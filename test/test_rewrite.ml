(* Tests for answering queries using views: MiniCon, Bucket, GLAV. *)

open Cq
module Minicon = Rewrite.Minicon
module Bucket = Rewrite.Bucket

let v = Term.v
let s = Term.str
let atom = Atom.make
let q head body = Query.make head body
let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* MiniCon unit tests *)

let test_minicon_identity_view () =
  let view = q (atom "v1" [ v "A"; v "B" ]) [ atom "r" [ v "A"; v "B" ] ] in
  let query = q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ] ] in
  let rewritings, stats = Minicon.rewrite ~views:[ view ] query in
  check_i "one rewriting" 1 (List.length rewritings);
  check_i "stats agree" 1 stats.Minicon.rewritings_produced;
  check_b "contained" true
    (Minicon.is_contained_rewriting ~views:[ view ] (List.hd rewritings) query)

let test_minicon_join_across_views () =
  (* q(x) :- r(x,y), s(y,z) answered by v_r and v_s. *)
  let vr = q (atom "vr" [ v "A"; v "B" ]) [ atom "r" [ v "A"; v "B" ] ] in
  let vs = q (atom "vs" [ v "A" ]) [ atom "s" [ v "A"; v "B" ] ] in
  let query =
    q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ]; atom "s" [ v "Y"; v "Z" ] ]
  in
  let rewritings, _ = Minicon.rewrite ~views:[ vr; vs ] query in
  check_i "one rewriting" 1 (List.length rewritings);
  let r = List.hd rewritings in
  check_i "two view atoms" 2 (Query.size r);
  check_b "contained" true (Minicon.is_contained_rewriting ~views:[ vr; vs ] r query)

let test_minicon_existential_closure () =
  (* A view hiding the join variable must cover both subgoals at once. *)
  let v_pair =
    q (atom "vp" [ v "A" ]) [ atom "r" [ v "A"; v "B" ]; atom "s" [ v "B"; v "C" ] ]
  in
  let query =
    q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ]; atom "s" [ v "Y"; v "Z" ] ]
  in
  let rewritings, stats = Minicon.rewrite ~views:[ v_pair ] query in
  check_i "single-view rewriting" 1 (List.length rewritings);
  check_i "one atom" 1 (Query.size (List.hd rewritings));
  check_b "mcd count is 1" true (stats.Minicon.mcds_formed = 1)

let test_minicon_hidden_join_var_fails () =
  (* v(a) :- r(a,b) hides b; it cannot answer q needing b joined to s,
     and no view covers s, so there is no rewriting. *)
  let vr = q (atom "vr" [ v "A" ]) [ atom "r" [ v "A"; v "B" ] ] in
  let vs = q (atom "vs" [ v "A" ]) [ atom "s" [ v "A"; v "B" ] ] in
  let query =
    q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ]; atom "s" [ v "Y"; v "Z" ] ]
  in
  let rewritings, _ = Minicon.rewrite ~views:[ vr; vs ] query in
  check_i "no rewriting" 0 (List.length rewritings)

let test_minicon_distinguished_head_var_required () =
  (* The view projects away the variable the query head needs. *)
  let view = q (atom "v1" [ v "B" ]) [ atom "r" [ v "A"; v "B" ] ] in
  let query = q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ] ] in
  let rewritings, _ = Minicon.rewrite ~views:[ view ] query in
  check_i "no rewriting" 0 (List.length rewritings)

let test_minicon_constant_in_query () =
  let view = q (atom "v1" [ v "A"; v "B" ]) [ atom "r" [ v "A"; v "B" ] ] in
  let query = q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; s "cs" ] ] in
  let rewritings, _ = Minicon.rewrite ~views:[ view ] query in
  check_i "one rewriting" 1 (List.length rewritings);
  let r = List.hd rewritings in
  check_b "constant pushed into view atom" true
    (List.exists
       (fun (a : Atom.t) -> List.exists (fun t -> Term.equal t (s "cs")) a.Atom.args)
       r.Query.body)

let test_minicon_constant_in_view () =
  (* View fixes dept='cs'; it answers the query asking for 'cs' but the
     rewriting must not be produced for dept='ee'. *)
  let view = q (atom "vcs" [ v "A" ]) [ atom "r" [ v "A"; s "cs" ] ] in
  let q_cs = q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; s "cs" ] ] in
  let q_ee = q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; s "ee" ] ] in
  check_i "cs answered" 1 (List.length (fst (Minicon.rewrite ~views:[ view ] q_cs)));
  check_i "ee not answered" 0 (List.length (fst (Minicon.rewrite ~views:[ view ] q_ee)))

let test_minicon_multiple_rewritings () =
  let v1 = q (atom "v1" [ v "A"; v "B" ]) [ atom "r" [ v "A"; v "B" ] ] in
  let v2 = q (atom "v2" [ v "A"; v "B" ]) [ atom "r" [ v "A"; v "B" ] ] in
  let query = q (atom "q" [ v "X"; v "Y" ]) [ atom "r" [ v "X"; v "Y" ] ] in
  let rewritings, _ = Minicon.rewrite ~views:[ v1; v2 ] query in
  check_i "two alternatives" 2 (List.length rewritings)

(* ------------------------------------------------------------------ *)
(* Bucket unit tests *)

let test_bucket_agrees_on_simple_case () =
  let vr = q (atom "vr" [ v "A"; v "B" ]) [ atom "r" [ v "A"; v "B" ] ] in
  let vs = q (atom "vs" [ v "A" ]) [ atom "s" [ v "A"; v "B" ] ] in
  let query =
    q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ]; atom "s" [ v "Y"; v "Z" ] ]
  in
  let mc, _ = Minicon.rewrite ~views:[ vr; vs ] query in
  let bk, bstats = Bucket.rewrite ~views:[ vr; vs ] query in
  check_i "same count" (List.length mc) (List.length bk);
  check_b "bucket tried at least as many candidates" true
    (bstats.Bucket.candidates_tried >= List.length bk)

let test_bucket_rejects_invalid_combination () =
  (* vr hides the join var: bucket generates the candidate but the
     containment check rejects it. *)
  let vr = q (atom "vr" [ v "A" ]) [ atom "r" [ v "A"; v "B" ] ] in
  let vs = q (atom "vs" [ v "A" ]) [ atom "s" [ v "A"; v "B" ] ] in
  let query =
    q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ]; atom "s" [ v "Y"; v "Z" ] ]
  in
  let bk, bstats = Bucket.rewrite ~views:[ vr; vs ] query in
  check_i "no valid rewriting" 0 (List.length bk);
  check_b "but candidates were tried" true (bstats.Bucket.candidates_tried > 0)

(* ------------------------------------------------------------------ *)
(* End-to-end soundness: evaluate rewritings over view extensions. *)

let base_db prng n =
  let db = Relalg.Database.create () in
  let r = Relalg.Database.create_relation db "r" [ "a"; "b" ] in
  let t = Relalg.Database.create_relation db "s" [ "a"; "b" ] in
  for _ = 1 to n do
    Cq.Eval.add_distinct r
      [| Relalg.Value.Int (Util.Prng.int prng 6);
         Relalg.Value.Int (Util.Prng.int prng 6) |];
    Cq.Eval.add_distinct t
      [| Relalg.Value.Int (Util.Prng.int prng 6);
         Relalg.Value.Int (Util.Prng.int prng 6) |]
  done;
  db

(* Materialise view extensions into a fresh database. *)
let view_db db views =
  let out = Relalg.Database.create () in
  List.iter
    (fun (view : Query.t) ->
      let rel = Eval.run db view in
      let renamed =
        Relalg.Relation.of_tuples
          (Relalg.Schema.make view.Query.head.Atom.pred
             (Relalg.Schema.attrs (Relalg.Relation.schema rel)))
          (Relalg.Relation.tuples rel)
      in
      Relalg.Database.add_relation out renamed)
    views;
  out

let answers db query =
  Relalg.Relation.tuples (Eval.run db query)
  |> List.map (fun row -> Array.to_list (Array.map Relalg.Value.to_string row))
  |> List.sort compare

let union_answers db queries =
  List.concat_map (answers db) queries |> List.sort_uniq compare

let test_end_to_end_soundness () =
  let prng = Util.Prng.create 2003 in
  let views =
    [ q (atom "v1" [ v "A"; v "B" ]) [ atom "r" [ v "A"; v "B" ] ];
      q (atom "v2" [ v "A"; v "B" ]) [ atom "s" [ v "A"; v "B" ] ];
      q (atom "v3" [ v "A"; v "C" ])
        [ atom "r" [ v "A"; v "B" ]; atom "s" [ v "B"; v "C" ] ] ]
  in
  let query =
    q (atom "q" [ v "X"; v "Z" ])
      [ atom "r" [ v "X"; v "Y" ]; atom "s" [ v "Y"; v "Z" ] ]
  in
  for _ = 1 to 10 do
    let db = base_db prng 15 in
    let vdb = view_db db views in
    let expected = answers db query in
    let mc, _ = Minicon.rewrite ~views query in
    let got = union_answers vdb mc in
    (* Soundness: every rewriting answer is a certain answer. *)
    check_b "minicon sound" true (List.for_all (fun x -> List.mem x expected) got);
    (* Completeness on this workload: views fully cover the query. *)
    check_b "minicon complete here" true
      (List.for_all (fun x -> List.mem x got) expected);
    (* Bucket and MiniCon agree as unions. *)
    let bk, _ = Bucket.rewrite ~views query in
    check_b "bucket = minicon answers" true (union_answers vdb bk = got)
  done

(* ------------------------------------------------------------------ *)
(* Property: random chain queries and random subchain views. *)

let prop_minicon_sound_random =
  QCheck.Test.make ~name:"minicon rewritings are contained in query" ~count:60
    QCheck.(pair (int_bound 1000) (int_range 2 4))
    (fun (seed, len) ->
      let prng = Util.Prng.create seed in
      (* Chain query q(x0,xlen) :- e(x0,x1), ..., e(x{len-1},xlen). *)
      let xs = List.init (len + 1) (fun i -> Printf.sprintf "X%d" i) in
      let body =
        List.init len (fun i ->
            atom "e" [ v (List.nth xs i); v (List.nth xs (i + 1)) ])
      in
      let query = q (atom "q" [ v (List.hd xs); v (List.nth xs len) ]) body in
      (* Random subchain views of length 1-2 with random head exposure. *)
      let views =
        List.init 4 (fun k ->
            let start = Util.Prng.int prng len in
            let vlen = min (1 + Util.Prng.int prng 2) (len - start) in
            let vbody =
              List.init vlen (fun i ->
                  atom "e"
                    [ v (Printf.sprintf "A%d" (start + i));
                      v (Printf.sprintf "A%d" (start + i + 1)) ])
            in
            let head_args =
              [ v (Printf.sprintf "A%d" start); v (Printf.sprintf "A%d" (start + vlen)) ]
            in
            q (atom (Printf.sprintf "w%d" k) head_args) vbody)
      in
      let rewritings, _ = Minicon.rewrite ~views query in
      List.for_all
        (fun r -> Minicon.is_contained_rewriting ~views r query)
        rewritings)

let prop_minicon_bucket_equivalent =
  QCheck.Test.make ~name:"minicon and bucket produce equivalent unions" ~count:30
    (QCheck.make QCheck.Gen.(int_bound 1000) ~print:string_of_int)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let views =
        [ q (atom "v1" [ v "A"; v "B" ]) [ atom "r" [ v "A"; v "B" ] ];
          q (atom "v2" [ v "B"; v "C" ]) [ atom "s" [ v "B"; v "C" ] ];
          q (atom "v3" [ v "A"; v "C" ])
            [ atom "r" [ v "A"; v "B" ]; atom "s" [ v "B"; v "C" ] ] ]
      in
      let query =
        q (atom "q" [ v "X"; v "Z" ])
          [ atom "r" [ v "X"; v "Y" ]; atom "s" [ v "Y"; v "Z" ] ]
      in
      let db = base_db prng 12 in
      let vdb = view_db db views in
      let mc, _ = Minicon.rewrite ~views query in
      let bk, _ = Bucket.rewrite ~views query in
      union_answers vdb mc = union_answers vdb bk)

let prop_minicon_complete_with_identity_views =
  QCheck.Test.make ~name:"identity views preserve all answers" ~count:80
    (QCheck.make QCheck.Gen.(int_bound 100_000) ~print:string_of_int)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let db = base_db prng 12 in
      (* Identity views over both base relations. *)
      let views =
        [ q (atom "vr" [ v "A"; v "B" ]) [ atom "r" [ v "A"; v "B" ] ];
          q (atom "vs" [ v "A"; v "B" ]) [ atom "s" [ v "A"; v "B" ] ] ]
      in
      (* A random 1-3 atom safe query over r/s. *)
      let pool = [| "X"; "Y"; "Z"; "W" |] in
      let rand_var () = v (Util.Prng.pick_arr prng pool) in
      let body =
        List.init (1 + Util.Prng.int prng 3) (fun _ ->
            atom (if Util.Prng.bool prng then "r" else "s")
              [ rand_var (); rand_var () ])
      in
      let head_var =
        match List.concat_map Atom.vars body with
        | x :: _ -> x
        | [] -> "X"
      in
      let query = q (atom "q" [ v head_var ]) body in
      let expected = answers db query in
      let rewritings, _ = Minicon.rewrite ~views query in
      let got = union_answers (view_db db views) rewritings in
      got = expected)

(* ------------------------------------------------------------------ *)
(* Glav *)

let test_glav_split () =
  let lhs = q (atom "m" [ v "X" ]) [ atom "src" [ v "X"; v "Y" ] ] in
  let rhs = q (atom "m" [ v "X" ]) [ atom "tgt" [ v "X" ] ] in
  let g = Rewrite.Glav.make Rewrite.Glav.Inclusion ~lhs ~rhs in
  let rule, view = Rewrite.Glav.split g ~mapping_pred:"M7" in
  check_b "rule head renamed" true (String.equal rule.Query.head.Atom.pred "M7");
  check_b "view head renamed" true (String.equal view.Query.head.Atom.pred "M7");
  check_b "inclusion not reversible" true (Rewrite.Glav.reversed g = None);
  let e = Rewrite.Glav.make Rewrite.Glav.Equality ~lhs ~rhs in
  check_b "equality reversible" true (Rewrite.Glav.reversed e <> None)

let test_glav_arity_mismatch () =
  let lhs = q (atom "m" [ v "X"; v "Y" ]) [ atom "src" [ v "X"; v "Y" ] ] in
  let rhs = q (atom "m" [ v "X" ]) [ atom "tgt" [ v "X" ] ] in
  check_b "raises" true
    (try
       ignore (Rewrite.Glav.make Rewrite.Glav.Inclusion ~lhs ~rhs);
       false
     with Invalid_argument _ -> true)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "rewrite"
    [ ("minicon",
       [ Alcotest.test_case "identity view" `Quick test_minicon_identity_view;
         Alcotest.test_case "join across views" `Quick test_minicon_join_across_views;
         Alcotest.test_case "existential closure" `Quick test_minicon_existential_closure;
         Alcotest.test_case "hidden join var" `Quick test_minicon_hidden_join_var_fails;
         Alcotest.test_case "head var required" `Quick
           test_minicon_distinguished_head_var_required;
         Alcotest.test_case "constant in query" `Quick test_minicon_constant_in_query;
         Alcotest.test_case "constant in view" `Quick test_minicon_constant_in_view;
         Alcotest.test_case "multiple rewritings" `Quick test_minicon_multiple_rewritings ]);
      ("bucket",
       [ Alcotest.test_case "agrees on simple case" `Quick test_bucket_agrees_on_simple_case;
         Alcotest.test_case "rejects invalid combos" `Quick
           test_bucket_rejects_invalid_combination ]);
      ("end-to-end", [ Alcotest.test_case "soundness" `Quick test_end_to_end_soundness ]);
      ("glav",
       [ Alcotest.test_case "split" `Quick test_glav_split;
         Alcotest.test_case "arity mismatch" `Quick test_glav_arity_mismatch ]);
      ("properties",
       qc
         [ prop_minicon_sound_random; prop_minicon_bucket_equivalent;
           prop_minicon_complete_with_identity_views ]) ]
