(* Tests for the Piazza PDMS: reformulation over mapping chains,
   topology/network simulation, updategrams and view maintenance. *)

open Cq
module P = Pdms

let v = Term.v
let atom = Atom.make
let q head body = Query.make head body
let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let vs s = Relalg.Value.Str s
let insert rel row = Relalg.Relation.apply rel (Relalg.Relation.Delta.add row)

(* ------------------------------------------------------------------ *)
(* Scenario builders *)

(* Two universities; MIT stores data; an equality mapping relates the
   two schemas. Querying UW's schema must surface MIT's data. *)
let two_peer_catalog mapping_kind =
  let catalog = P.Catalog.create () in
  let uw = P.Peer.create ~name:"uw" ~schema:[ ("course", [ "code"; "title" ]) ] in
  let mit = P.Peer.create ~name:"mit" ~schema:[ ("subject", [ "id"; "name" ]) ] in
  P.Catalog.add_peer catalog uw;
  P.Catalog.add_peer catalog mit;
  let stored = P.Catalog.store_identity catalog mit ~rel:"subject" in
  List.iter (insert stored)
    [ [| vs "6.033"; vs "systems" |]; [| vs "6.830"; vs "databases" |] ];
  let lhs = q (atom "m" [ v "C"; v "T" ]) [ P.Peer.atom mit "subject" [ v "C"; v "T" ] ] in
  let rhs = q (atom "m" [ v "C"; v "T" ]) [ P.Peer.atom uw "course" [ v "C"; v "T" ] ] in
  let mapping =
    match mapping_kind with
    | `Equality -> P.Peer_mapping.equality ~lhs ~rhs
    | `Inclusion -> P.Peer_mapping.inclusion ~lhs ~rhs
  in
  ignore (P.Catalog.add_mapping catalog mapping);
  (catalog, uw, mit)

let test_two_peer_equality () =
  let catalog, uw, _ = two_peer_catalog `Equality in
  let query = q (atom "ans" [ v "X"; v "Y" ]) [ P.Peer.atom uw "course" [ v "X"; v "Y" ] ] in
  let result = P.Answer.answer catalog query in
  check_i "both MIT courses" 2 (Relalg.Relation.cardinality result.P.Answer.answers);
  check_b "some rewriting emitted" true
    (result.P.Answer.outcome.P.Reformulate.stats.P.Reformulate.emitted > 0)

let test_two_peer_inclusion_directionality () =
  let catalog, uw, mit = two_peer_catalog `Inclusion in
  (* mit.subject ⊆ uw.course: querying uw gets MIT data... *)
  let q_uw = q (atom "ans" [ v "X"; v "Y" ]) [ P.Peer.atom uw "course" [ v "X"; v "Y" ] ] in
  check_i "uw sees mit data" 2
    (Relalg.Relation.cardinality (P.Answer.answer catalog q_uw).P.Answer.answers);
  (* ... and querying mit.subject is answered from MIT's own storage
     (the mapping is not reversed). *)
  let q_mit = q (atom "ans" [ v "X"; v "Y" ]) [ P.Peer.atom mit "subject" [ v "X"; v "Y" ] ] in
  check_i "mit local storage" 2
    (Relalg.Relation.cardinality (P.Answer.answer catalog q_mit).P.Answer.answers)

let test_definitional_mapping () =
  let catalog = P.Catalog.create () in
  let uw = P.Peer.create ~name:"uw" ~schema:[ ("course", [ "code"; "title" ]) ] in
  let mit = P.Peer.create ~name:"mit" ~schema:[ ("subject", [ "id"; "name" ]) ] in
  P.Catalog.add_peer catalog uw;
  P.Catalog.add_peer catalog mit;
  let stored = P.Catalog.store_identity catalog mit ~rel:"subject" in
  insert stored [| vs "6.033"; vs "systems" |];
  (* GAV-style: uw.course defined from mit.subject. *)
  let rule =
    q
      (P.Peer.atom uw "course" [ v "C"; v "T" ])
      [ P.Peer.atom mit "subject" [ v "C"; v "T" ] ]
  in
  ignore (P.Catalog.add_mapping catalog (P.Peer_mapping.definitional rule));
  let query = q (atom "ans" [ v "X" ]) [ P.Peer.atom uw "course" [ v "X"; v "T" ] ] in
  check_i "one course" 1
    (Relalg.Relation.cardinality (P.Answer.answer catalog query).P.Answer.answers)

(* Chain of equalities: peer0 - peer1 - ... - peer_{n-1}; data lives at
   the last peer; query at peer0 must traverse the transitive closure. *)
let chain_catalog n =
  let catalog = P.Catalog.create () in
  let peers =
    List.init n (fun i ->
        let p =
          P.Peer.create ~name:(Printf.sprintf "p%d" i)
            ~schema:[ ("course", [ "code"; "title" ]) ]
        in
        P.Catalog.add_peer catalog p;
        p)
  in
  let last = List.nth peers (n - 1) in
  let stored = P.Catalog.store_identity catalog last ~rel:"course" in
  List.iter (insert stored)
    [ [| vs "c1"; vs "ancient history" |]; [| vs "c2"; vs "databases" |] ];
  List.iteri
    (fun i p ->
      if i < n - 1 then begin
        let next = List.nth peers (i + 1) in
        let lhs =
          q (atom "m" [ v "C"; v "T" ]) [ P.Peer.atom next "course" [ v "C"; v "T" ] ]
        in
        let rhs =
          q (atom "m" [ v "C"; v "T" ]) [ P.Peer.atom p "course" [ v "C"; v "T" ] ]
        in
        ignore (P.Catalog.add_mapping catalog (P.Peer_mapping.equality ~lhs ~rhs))
      end)
    peers;
  (catalog, peers)

let test_chain_transitive_closure () =
  List.iter
    (fun n ->
      let catalog, peers = chain_catalog n in
      let p0 = List.hd peers in
      let query =
        q (atom "ans" [ v "X"; v "Y" ]) [ P.Peer.atom p0 "course" [ v "X"; v "Y" ] ]
      in
      let result = P.Answer.answer catalog query in
      check_i
        (Printf.sprintf "chain %d answers" n)
        2
        (Relalg.Relation.cardinality result.P.Answer.answers))
    [ 2; 3; 5; 8 ]

let test_chain_mapping_count_linear () =
  let catalog, _ = chain_catalog 10 in
  check_i "n-1 mappings" 9 (P.Catalog.mapping_count catalog)

let test_reachability () =
  let catalog, _ = chain_catalog 4 in
  let reachable = P.Answer.reachable_peers catalog "p0" in
  check_i "all peers reachable" 4 (List.length reachable)

(* Sibling subgoals through the same mapping: the per-atom history must
   allow unfolding the same mapping predicate for both atoms. *)
let test_same_mapping_twice_in_one_query () =
  let catalog = P.Catalog.create () in
  let a = P.Peer.create ~name:"a" ~schema:[ ("r", [ "x"; "y" ]) ] in
  let b = P.Peer.create ~name:"b" ~schema:[ ("r2", [ "x"; "y" ]) ] in
  P.Catalog.add_peer catalog a;
  P.Catalog.add_peer catalog b;
  let stored = P.Catalog.store_identity catalog b ~rel:"r2" in
  List.iter (insert stored)
    [ [| vs "1"; vs "2" |]; [| vs "3"; vs "4" |] ];
  let lhs = q (atom "m" [ v "X"; v "Y" ]) [ P.Peer.atom b "r2" [ v "X"; v "Y" ] ] in
  let rhs = q (atom "m" [ v "X"; v "Y" ]) [ P.Peer.atom a "r" [ v "X"; v "Y" ] ] in
  ignore (P.Catalog.add_mapping catalog (P.Peer_mapping.equality ~lhs ~rhs));
  let query =
    q
      (atom "ans" [ v "X"; v "Y"; v "X2"; v "Y2" ])
      [ P.Peer.atom a "r" [ v "X"; v "Y" ]; P.Peer.atom a "r" [ v "X2"; v "Y2" ] ]
  in
  let result = P.Answer.answer catalog query in
  check_i "cross product" 4 (Relalg.Relation.cardinality result.P.Answer.answers)

let test_local_plus_remote_union () =
  let catalog, uw, _ = two_peer_catalog `Equality in
  (* Give UW local storage too. *)
  let stored = P.Catalog.store_identity catalog uw ~rel:"course" in
  insert stored [| vs "cse444"; vs "databases uw" |];
  let query = q (atom "ans" [ v "X"; v "Y" ]) [ P.Peer.atom uw "course" [ v "X"; v "Y" ] ] in
  check_i "local + remote" 3
    (Relalg.Relation.cardinality (P.Answer.answer catalog query).P.Answer.answers)

let test_join_query_through_mapping () =
  let catalog = P.Catalog.create () in
  let a =
    P.Peer.create ~name:"a" ~schema:[ ("r", [ "x"; "y" ]); ("s", [ "y"; "z" ]) ]
  in
  let b =
    P.Peer.create ~name:"b" ~schema:[ ("r2", [ "x"; "y" ]); ("s2", [ "y"; "z" ]) ]
  in
  P.Catalog.add_peer catalog a;
  P.Catalog.add_peer catalog b;
  let sr = P.Catalog.store_identity catalog b ~rel:"r2" in
  let ss = P.Catalog.store_identity catalog b ~rel:"s2" in
  List.iter (insert sr) [ [| vs "1"; vs "2" |]; [| vs "5"; vs "6" |] ];
  List.iter (insert ss) [ [| vs "2"; vs "3" |] ];
  (* Two separate mappings, one per relation. *)
  let m1_lhs = q (atom "m" [ v "X"; v "Y" ]) [ P.Peer.atom b "r2" [ v "X"; v "Y" ] ] in
  let m1_rhs = q (atom "m" [ v "X"; v "Y" ]) [ P.Peer.atom a "r" [ v "X"; v "Y" ] ] in
  let m2_lhs = q (atom "m" [ v "Y"; v "Z" ]) [ P.Peer.atom b "s2" [ v "Y"; v "Z" ] ] in
  let m2_rhs = q (atom "m" [ v "Y"; v "Z" ]) [ P.Peer.atom a "s" [ v "Y"; v "Z" ] ] in
  ignore (P.Catalog.add_mapping catalog (P.Peer_mapping.equality ~lhs:m1_lhs ~rhs:m1_rhs));
  ignore (P.Catalog.add_mapping catalog (P.Peer_mapping.equality ~lhs:m2_lhs ~rhs:m2_rhs));
  let query =
    q
      (atom "ans" [ v "X"; v "Z" ])
      [ P.Peer.atom a "r" [ v "X"; v "Y" ]; P.Peer.atom a "s" [ v "Y"; v "Z" ] ]
  in
  let result = P.Answer.answer catalog query in
  let rows = P.Answer.answers_list result in
  check_b "join answer" true (rows = [ [ "1"; "3" ] ])

(* Cyclic mapping graph: every peer's data must still be found by the
   pruned search, each tuple exactly once. *)
let test_mesh_completeness () =
  let prng = Util.Prng.create 77 in
  let topology = P.Topology.generate ~prng (P.Topology.Mesh 1) ~n:10 in
  let catalog = P.Catalog.create () in
  let peers =
    Array.init 10 (fun i ->
        let p =
          P.Peer.create ~name:(Printf.sprintf "m%d" i)
            ~schema:[ ("course", [ "code"; "title" ]) ]
        in
        P.Catalog.add_peer catalog p;
        let stored = P.Catalog.store_identity catalog p ~rel:"course" in
        insert stored
          [| vs (Printf.sprintf "c%d" i); vs (Printf.sprintf "t%d" i) |];
        insert stored
          [| vs (Printf.sprintf "c%d'" i); vs (Printf.sprintf "t%d'" i) |];
        p)
  in
  List.iter
    (fun (a, b) ->
      let args = [ v "X"; v "Y" ] in
      let lhs = q (atom "m" args) [ P.Peer.atom peers.(a) "course" args ] in
      let rhs = q (atom "m" args) [ P.Peer.atom peers.(b) "course" args ] in
      ignore (P.Catalog.add_mapping catalog (P.Peer_mapping.equality ~lhs ~rhs)))
    topology.P.Topology.edges;
  let query =
    q (atom "ans" [ v "X"; v "Y" ]) [ P.Peer.atom peers.(0) "course" [ v "X"; v "Y" ] ]
  in
  let result = P.Answer.answer catalog query in
  check_i "all peers' tuples" 20
    (Relalg.Relation.cardinality result.P.Answer.answers)

let test_no_pruning_terminates_and_agrees () =
  let catalog, peers = chain_catalog 4 in
  let p0 = List.hd peers in
  let query =
    q (atom "ans" [ v "X"; v "Y" ]) [ P.Peer.atom p0 "course" [ v "X"; v "Y" ] ]
  in
  let pruning = { P.Reformulate.no_pruning with P.Reformulate.max_depth = 10 } in
  let loose = P.Answer.answer ~exec:(P.Exec.with_pruning pruning) catalog query in
  let tight = P.Answer.answer catalog query in
  check_b "same answers" true
    (P.Answer.answers_list loose = P.Answer.answers_list tight);
  check_b "pruning reduces work" true
    (tight.P.Answer.outcome.P.Reformulate.stats.P.Reformulate.nodes_expanded
    <= loose.P.Answer.outcome.P.Reformulate.stats.P.Reformulate.nodes_expanded)

let test_projection_mapping () =
  (* The mapping only exposes the course code, not the title. *)
  let catalog = P.Catalog.create () in
  let uw = P.Peer.create ~name:"uw" ~schema:[ ("course", [ "code"; "title" ]) ] in
  let mit = P.Peer.create ~name:"mit" ~schema:[ ("subject", [ "id"; "name" ]) ] in
  P.Catalog.add_peer catalog uw;
  P.Catalog.add_peer catalog mit;
  let stored = P.Catalog.store_identity catalog mit ~rel:"subject" in
  insert stored [| vs "6.033"; vs "systems" |];
  let lhs = q (atom "m" [ v "C" ]) [ P.Peer.atom mit "subject" [ v "C"; v "T" ] ] in
  let rhs = q (atom "m" [ v "C" ]) [ P.Peer.atom uw "course" [ v "C"; v "T" ] ] in
  ignore (P.Catalog.add_mapping catalog (P.Peer_mapping.inclusion ~lhs ~rhs));
  (* Asking only for codes succeeds... *)
  let q_code = q (atom "ans" [ v "X" ]) [ P.Peer.atom uw "course" [ v "X"; v "T" ] ] in
  check_i "codes flow" 1
    (Relalg.Relation.cardinality (P.Answer.answer catalog q_code).P.Answer.answers);
  (* ... asking for titles cannot be answered through this mapping. *)
  let q_title = q (atom "ans" [ v "T" ]) [ P.Peer.atom uw "course" [ v "X"; v "T" ] ] in
  check_i "titles do not flow" 0
    (Relalg.Relation.cardinality (P.Answer.answer catalog q_title).P.Answer.answers)

(* ------------------------------------------------------------------ *)
(* Topology and network *)

let test_topology_shapes () =
  let chain = P.Topology.generate P.Topology.Chain ~n:8 in
  check_i "chain edges" 7 (P.Topology.edge_count chain);
  check_i "chain diameter" 7 (P.Topology.diameter chain);
  let star = P.Topology.generate P.Topology.Star ~n:8 in
  check_i "star edges" 7 (P.Topology.edge_count star);
  check_i "star diameter" 2 (P.Topology.diameter star);
  let ring = P.Topology.generate P.Topology.Ring ~n:8 in
  check_i "ring edges" 8 (P.Topology.edge_count ring);
  let tree = P.Topology.generate P.Topology.Binary_tree ~n:7 in
  check_i "tree edges" 6 (P.Topology.edge_count tree);
  let prng = Util.Prng.create 5 in
  let mesh = P.Topology.generate ~prng (P.Topology.Mesh 2) ~n:8 in
  check_b "mesh has extra edges" true (P.Topology.edge_count mesh >= 7)

let test_network_routing () =
  let net = P.Network.create () in
  P.Network.connect net "a" "b" ~latency_ms:10.0;
  P.Network.connect net "b" "c" ~latency_ms:5.0;
  P.Network.connect net "a" "c" ~latency_ms:50.0;
  (match P.Network.latency net "a" "c" with
  | Some l -> Alcotest.(check (float 1e-9)) "via b" 15.0 l
  | None -> Alcotest.fail "disconnected");
  (match P.Network.hops net "a" "c" with
  | Some h -> check_i "two hops" 2 h
  | None -> Alcotest.fail "disconnected");
  (match P.Network.send net ~src:"a" ~dst:"c" ~size:1024 with
  | Ok t -> Alcotest.(check (float 1e-9)) "send time" 16.0 t
  | Error e -> Alcotest.fail (P.Network.error_to_string e));
  check_i "one message" 1 (P.Network.messages_sent net);
  (* cost is pure: same price, no counter movement. *)
  (match P.Network.cost net ~src:"a" ~dst:"c" ~size:1024 with
  | Some c -> Alcotest.(check (float 1e-9)) "cost agrees with send" 16.0 c
  | None -> Alcotest.fail "cost: disconnected");
  check_i "cost sent nothing" 1 (P.Network.messages_sent net)

let test_network_edge_dedupe () =
  let net = P.Network.create () in
  P.Network.connect net "a" "b" ~latency_ms:10.0;
  P.Network.connect net "a" "b" ~latency_ms:25.0;
  P.Network.connect net "b" "a" ~latency_ms:4.0;
  (match P.Network.latency net "a" "b" with
  | Some l -> Alcotest.(check (float 1e-9)) "lowest latency wins" 4.0 l
  | None -> Alcotest.fail "disconnected");
  Alcotest.(check (list string)) "peers sorted, no dups" [ "a"; "b" ]
    (P.Network.peers net)

let test_network_faults () =
  let net = P.Network.create () in
  P.Network.connect net "a" "b" ~latency_ms:10.0;
  P.Network.connect net "b" "c" ~latency_ms:10.0;
  let v0 = P.Network.Fault.topology_version net in
  P.Network.Fault.fail_peer net "b";
  check_b "version bumped" true (P.Network.Fault.topology_version net > v0);
  check_b "b is down" true (P.Network.Fault.is_down net "b");
  check_b "no route around b" true (P.Network.latency net "a" "c" = None);
  (match P.Network.send net ~src:"a" ~dst:"b" ~size:64 with
  | Error (P.Network.Peer_down "b") -> ()
  | _ -> Alcotest.fail "expected Peer_down b");
  check_i "failed sends not counted" 0 (P.Network.messages_sent net);
  P.Network.Fault.heal_peer net "b";
  check_b "healed route" true (P.Network.latency net "a" "c" = Some 20.0);
  (* Cutting the a-b link severs a from everyone. *)
  P.Network.Fault.cut_link net "a" "b";
  (match P.Network.send net ~src:"a" ~dst:"c" ~size:64 with
  | Error (P.Network.No_route ("a", "c")) -> ()
  | _ -> Alcotest.fail "expected No_route");
  P.Network.Fault.restore_link net "b" "a";
  check_b "restored (either arg order)" true
    (P.Network.latency net "a" "c" = Some 20.0);
  (* Latency spike inflates the route but keeps it alive. *)
  P.Network.Fault.spike net "a" "b" ~extra_ms:100.0;
  check_b "spiked" true (P.Network.latency net "a" "c" = Some 120.0);
  P.Network.Fault.heal net;
  check_b "heal clears spikes" true (P.Network.latency net "a" "c" = Some 20.0)

let test_network_retry_flaky () =
  let net = P.Network.create () in
  P.Network.connect net "a" "b" ~latency_ms:10.0;
  P.Network.Fault.flaky net ~p:1.0 ();
  let before = Obs.Metrics.snapshot () in
  let retry = { P.Exec.default_retry with P.Exec.max_attempts = 3 } in
  let prng = Util.Prng.create 42 in
  let o = P.Network.send_with_retry net ~retry ~prng ~src:"a" ~dst:"b" ~size:64 in
  (match o.P.Network.result with
  | Error (P.Network.Link_drop _) -> ()
  | _ -> Alcotest.fail "expected every attempt dropped");
  check_i "three attempts" 3 o.P.Network.attempts;
  check_i "two retries" 2 o.P.Network.retries;
  check_b "backoff accumulated" true (o.P.Network.backoff_ms > 0.0);
  check_b "elapsed covers timeouts + backoff" true
    (o.P.Network.elapsed_ms >= o.P.Network.backoff_ms);
  check_i "nothing delivered" 0 (P.Network.messages_sent net);
  let after = Obs.Metrics.snapshot () in
  let delta name =
    Obs.Metrics.counter_value after name - Obs.Metrics.counter_value before name
  in
  check_i "pdms.net.retries" 2 (delta "pdms.net.retries");
  check_i "pdms.net.gave_up" 1 (delta "pdms.net.gave_up");
  (* Turning flakiness off makes the same exchange succeed first try. *)
  P.Network.Fault.flaky net ~p:0.0 ();
  let o2 =
    P.Network.send_with_retry net ~retry ~prng ~src:"a" ~dst:"b" ~size:64
  in
  check_b "delivered" true (Result.is_ok o2.P.Network.result);
  check_i "first attempt" 1 o2.P.Network.attempts;
  check_i "one message" 1 (P.Network.messages_sent net)

let test_network_of_topology () =
  let topo = P.Topology.generate P.Topology.Chain ~n:4 in
  let net =
    P.Network.of_topology topo ~names:[ "p0"; "p1"; "p2"; "p3" ] ~base_latency_ms:2.0
  in
  match P.Network.latency net "p0" "p3" with
  | Some l -> Alcotest.(check (float 1e-9)) "three hops" 6.0 l
  | None -> Alcotest.fail "disconnected"

(* ------------------------------------------------------------------ *)
(* Updategrams *)

let vi i = Relalg.Value.Int i

let test_updategram_of_log () =
  let events =
    [ Storage.Relation_store.Inserted ("r", [| vi 1 |]);
      Storage.Relation_store.Inserted ("r", [| vi 2 |]);
      Storage.Relation_store.Deleted ("r", [| vi 1 |]);
      Storage.Relation_store.Inserted ("s", [| vi 9 |]) ]
  in
  match P.Updategram.of_log events with
  | [ r; s ] ->
      check_b "r gram" true (r.P.Updategram.rel = "r");
      check_i "insert 2 survives" 1 (List.length r.P.Updategram.inserts);
      check_i "delete cancelled" 0 (List.length r.P.Updategram.deletes);
      check_i "s gram" 1 (List.length s.P.Updategram.inserts)
  | grams -> Alcotest.fail (Printf.sprintf "expected 2 grams, got %d" (List.length grams))

let test_updategram_compose () =
  let a = P.Updategram.make ~rel:"r" ~inserts:[ [| vi 1 |]; [| vi 2 |] ] () in
  let b = P.Updategram.make ~rel:"r" ~deletes:[ [| vi 1 |] ] ~inserts:[ [| vi 3 |] ] () in
  let c = P.Updategram.compose a b in
  check_i "two inserts" 2 (List.length c.P.Updategram.inserts);
  check_i "no deletes" 0 (List.length c.P.Updategram.deletes)

let prop_updategram_log_replay =
  QCheck.Test.make ~name:"of_log replay reproduces the final state" ~count:150
    (QCheck.make QCheck.Gen.(int_bound 100_000) ~print:string_of_int)
    (fun seed ->
      let prng = Util.Prng.create seed in
      (* Drive a relation store with random ops, recording the log. *)
      let store = Storage.Relation_store.create () in
      Storage.Relation_store.declare store "r" [ "a" ];
      Storage.Relation_store.declare store "s" [ "a" ];
      let initial = Relalg.Database.copy (Storage.Relation_store.database store) in
      for _ = 1 to 30 do
        let rel = if Util.Prng.bool prng then "r" else "s" in
        let tuple = [| Relalg.Value.Int (Util.Prng.int prng 5) |] in
        if Util.Prng.bernoulli prng 0.7 then
          ignore (Storage.Relation_store.insert store rel tuple)
        else ignore (Storage.Relation_store.delete store rel tuple)
      done;
      (* Replaying the folded updategrams on the initial copy must give
         the same final contents. *)
      let grams = P.Updategram.of_log (Storage.Relation_store.log store) in
      List.iter (P.Updategram.apply initial) grams;
      let dump db name =
        Relalg.Relation.tuples (Relalg.Database.find db name)
        |> List.map (fun row -> Relalg.Value.to_string row.(0))
        |> List.sort compare
      in
      let final = Storage.Relation_store.database store in
      dump initial "r" = dump final "r" && dump initial "s" = dump final "s")

(* ------------------------------------------------------------------ *)
(* View maintenance *)

let vm_db () =
  let db = Relalg.Database.create () in
  ignore (Relalg.Database.create_relation db "r" [ "a"; "b" ]);
  ignore (Relalg.Database.create_relation db "s" [ "b"; "c" ]);
  db

let vm_view =
  q (atom "vw" [ v "X"; v "Z" ]) [ atom "r" [ v "X"; v "Y" ]; atom "s" [ v "Y"; v "Z" ] ]

let sorted_tuples vm =
  P.View_maintenance.tuples vm
  |> List.map (fun row -> Array.to_list (Array.map Relalg.Value.to_string row))
  |> List.sort compare

let test_view_maintenance_basic () =
  let db = vm_db () in
  let vm = P.View_maintenance.create db vm_view in
  check_i "empty initially" 0 (P.View_maintenance.cardinality vm);
  P.View_maintenance.apply vm
    (P.Updategram.make ~rel:"r" ~inserts:[ [| vi 1; vi 2 |] ] ());
  check_i "no join partner yet" 0 (P.View_maintenance.cardinality vm);
  P.View_maintenance.apply vm
    (P.Updategram.make ~rel:"s" ~inserts:[ [| vi 2; vi 3 |] ] ());
  check_b "join appears" true (sorted_tuples vm = [ [ "1"; "3" ] ]);
  (* A second derivation of the same output tuple. *)
  P.View_maintenance.apply vm
    (P.Updategram.make ~rel:"r" ~inserts:[ [| vi 1; vi 5 |] ] ());
  P.View_maintenance.apply vm
    (P.Updategram.make ~rel:"s" ~inserts:[ [| vi 5; vi 3 |] ] ());
  check_b "still one tuple" true (sorted_tuples vm = [ [ "1"; "3" ] ]);
  (* Deleting one derivation keeps the tuple; deleting both removes it. *)
  P.View_maintenance.apply vm
    (P.Updategram.make ~rel:"s" ~deletes:[ [| vi 5; vi 3 |] ] ());
  check_b "survives one delete" true (sorted_tuples vm = [ [ "1"; "3" ] ]);
  P.View_maintenance.apply vm
    (P.Updategram.make ~rel:"s" ~deletes:[ [| vi 2; vi 3 |] ] ());
  check_i "gone after both" 0 (P.View_maintenance.cardinality vm)

let prop_view_maintenance_matches_recompute =
  QCheck.Test.make ~name:"incremental maintenance = recompute" ~count:80
    (QCheck.make QCheck.Gen.(int_bound 10_000) ~print:string_of_int)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let db = vm_db () in
      let vm = P.View_maintenance.create db vm_view in
      let random_tuple () = [| vi (Util.Prng.int prng 4); vi (Util.Prng.int prng 4) |] in
      for _ = 1 to 25 do
        let rel = if Util.Prng.bool prng then "r" else "s" in
        let u =
          if Util.Prng.bernoulli prng 0.7 then
            P.Updategram.make ~rel ~inserts:[ random_tuple () ] ()
          else P.Updategram.make ~rel ~deletes:[ random_tuple () ] ()
        in
        P.View_maintenance.apply vm u
      done;
      let incremental = sorted_tuples vm in
      P.View_maintenance.refresh vm;
      incremental = sorted_tuples vm)

(* Non-identity storage description: the peer stores only a selection
   of its logical relation (A:R ⊆ Q(P) with a constant filter). *)
let test_storage_description_selection () =
  let catalog = P.Catalog.create () in
  let uw =
    P.Peer.create ~name:"uw" ~schema:[ ("course", [ "code"; "title"; "dept" ]) ]
  in
  P.Catalog.add_peer catalog uw;
  (* Stored relation holds only CS courses, and only (code, title). *)
  let stored = P.Peer.add_stored uw ~rel:"cs_courses" ~attrs:[ "code"; "title" ] in
  let view =
    q
      (atom (P.Peer.stored_pred uw "cs_courses") [ v "C"; v "T" ])
      [ P.Peer.atom uw "course" [ v "C"; v "T"; Term.str "cs" ] ]
  in
  P.Catalog.add_storage catalog (P.Storage_desc.make P.Storage_desc.Containment view);
  List.iter (insert stored)
    [ [| vs "cse444"; vs "databases" |]; [| vs "cse446"; vs "ml" |] ];
  (* Asking for CS courses is answered from storage... *)
  let q_cs =
    q (atom "ans" [ v "C"; v "T" ])
      [ P.Peer.atom uw "course" [ v "C"; v "T"; Term.str "cs" ] ]
  in
  check_i "cs courses" 2
    (Relalg.Relation.cardinality (P.Answer.answer catalog q_cs).P.Answer.answers);
  (* ... asking for all courses still finds (only) the stored ones —
     the maximally contained answer. *)
  let q_all =
    q (atom "ans" [ v "C" ]) [ P.Peer.atom uw "course" [ v "C"; v "T"; v "D" ] ]
  in
  check_i "contained answer" 2
    (Relalg.Relation.cardinality (P.Answer.answer catalog q_all).P.Answer.answers);
  (* ... and asking specifically for history courses yields nothing. *)
  let q_hist =
    q (atom "ans" [ v "C" ])
      [ P.Peer.atom uw "course" [ v "C"; v "T"; Term.str "history" ] ]
  in
  check_i "no history stored" 0
    (Relalg.Relation.cardinality (P.Answer.answer catalog q_hist).P.Answer.answers)

(* ------------------------------------------------------------------ *)
(* Keyword search across the PDMS *)

let test_keyword_search () =
  let catalog, _, mit = two_peer_catalog `Equality in
  ignore mit;
  let hits = P.Keyword.search catalog "databases" in
  check_b "finds the databases course" true
    (List.exists
       (fun (h : P.Keyword.hit) ->
         h.P.Keyword.peer = "mit"
         && Array.exists
              (fun v -> Relalg.Value.to_string v = "databases")
              h.P.Keyword.tuple)
       hits);
  (* Ranked: the databases tuple outranks the systems tuple. *)
  (match hits with
  | best :: _ ->
      check_b "best is databases" true
        (Array.exists
           (fun v -> Relalg.Value.to_string v = "databases")
           best.P.Keyword.tuple)
  | [] -> Alcotest.fail "no hits");
  check_i "no junk hits" 0 (List.length (P.Keyword.search catalog "zebra"))

(* ------------------------------------------------------------------ *)
(* Distributed execution *)

let test_distributed_owner_parsing () =
  check_b "stored pred" true
    (P.Distributed.owner_of_pred "mit.subject!" = Some "mit");
  check_b "peer pred is not stored" true
    (P.Distributed.owner_of_pred "mit.subject" = None);
  check_b "unqualified" true (P.Distributed.owner_of_pred "course!" = None)

let test_distributed_beats_central () =
  (* Data at the far end of a chain; executing there and shipping only
     the (smaller) result must beat shipping the whole relation. *)
  let catalog, peers = chain_catalog 4 in
  let network = P.Network.create () in
  List.iteri
    (fun i _ ->
      if i < 3 then
        P.Network.connect network
          (Printf.sprintf "p%d" i)
          (Printf.sprintf "p%d" (i + 1))
          ~latency_ms:10.0)
    peers;
  (* Bulk up the stored relation so shipping it is expensive. *)
  let last = List.nth peers 3 in
  let stored = Relalg.Database.find (P.Peer.stored_db last) (P.Peer.stored_pred last "course") in
  for i = 0 to 199 do
    insert stored
      [| vs (Printf.sprintf "bulk%d" i); vs "filler" |]
  done;
  let p0 = List.hd peers in
  (* Selective query: only one course code. *)
  let query =
    q (atom "ans" [ v "T" ])
      [ P.Peer.atom p0 "course" [ Term.str "c1"; v "T" ] ]
  in
  let plan = P.Distributed.execute catalog network ~at:"p0" query in
  check_i "one answer" 1 (Relalg.Relation.cardinality plan.P.Distributed.answers);
  check_b "distributed cheaper than central" true
    (plan.P.Distributed.distributed_ms < plan.P.Distributed.central_ms);
  (* The chosen site owns the data. *)
  check_b "executed at the data" true
    (List.for_all
       (fun (sp : P.Distributed.site_plan) ->
         sp.P.Distributed.remote_reads = 0)
       plan.P.Distributed.sites)

let test_distributed_answers_match_answer () =
  let catalog, peers = chain_catalog 3 in
  let network = P.Network.create () in
  P.Network.connect network "p0" "p1" ~latency_ms:5.0;
  P.Network.connect network "p1" "p2" ~latency_ms:5.0;
  let p0 = List.hd peers in
  let query =
    q (atom "ans" [ v "X"; v "Y" ]) [ P.Peer.atom p0 "course" [ v "X"; v "Y" ] ]
  in
  let plan = P.Distributed.execute catalog network ~at:"p0" query in
  let direct = P.Answer.answer catalog query in
  check_b "same answers" true
    (List.sort compare
       (List.map (fun r -> Array.map Relalg.Value.to_string r)
          (Relalg.Relation.tuples plan.P.Distributed.answers))
    = List.sort compare
        (List.map (fun r -> Array.map Relalg.Value.to_string r)
           (Relalg.Relation.tuples direct.P.Answer.answers)))

let rel_sorted rel =
  Relalg.Relation.tuples rel
  |> List.map (fun r -> Array.to_list (Array.map Relalg.Value.to_string r))
  |> List.sort compare

(* Planning must be pure: with no faults, the traffic counters reflect
   executed transfers only, not candidate-site cost probes. *)
let test_distributed_messages_count_executed_only () =
  let catalog, peers = chain_catalog 4 in
  let network = P.Network.create () in
  List.iteri
    (fun i _ ->
      if i < 3 then
        P.Network.connect network
          (Printf.sprintf "p%d" i)
          (Printf.sprintf "p%d" (i + 1))
          ~latency_ms:10.0)
    peers;
  P.Network.reset_counters network;
  let p0 = List.hd peers in
  let query =
    q (atom "ans" [ v "T" ])
      [ P.Peer.atom p0 "course" [ Term.str "c1"; v "T" ] ]
  in
  let plan = P.Distributed.execute catalog network ~at:"p0" query in
  check_b "complete" true plan.P.Distributed.report.P.Distributed.complete;
  check_i "no retries without faults" 0
    plan.P.Distributed.report.P.Distributed.retries;
  (* Every site plan here reads locally (remote_reads = 0), so the only
     real transfers are the result ships from non-p0 sites. *)
  let expected_ships =
    List.length
      (List.filter
         (fun (sp : P.Distributed.site_plan) ->
           not (String.equal sp.P.Distributed.site "p0"))
         plan.P.Distributed.sites)
  in
  check_b "something actually shipped" true (expected_ships > 0);
  check_i "messages = executed ships only" expected_ships
    (P.Network.messages_sent network)

(* Figure-2 six-university network under a partition: the answer
   degrades to the reachable side and heals back to the full answer. *)
let test_distributed_partitioned_six_universities () =
  let prng = Util.Prng.create 2003 in
  let d = Workload.University.build_delearning prng ~courses_per_peer:2 in
  let catalog = d.Workload.University.catalog in
  let network = d.Workload.University.network in
  let _, stanford = List.hd d.Workload.University.peers in
  let query = Workload.University.course_query stanford in
  let full = P.Distributed.execute catalog network ~at:"stanford" query in
  check_b "fault-free run complete" true
    full.P.Distributed.report.P.Distributed.complete;
  check_b "fault-free matches Answer.answer" true
    (rel_sorted full.P.Distributed.answers
    = rel_sorted (P.Answer.answer catalog query).P.Answer.answers);
  (* Cut {stanford, berkeley, roma} off from {mit, oxford, tsinghua}. *)
  let before = Obs.Metrics.snapshot () in
  P.Network.Fault.partition network [ "stanford"; "berkeley"; "roma" ];
  let part = P.Distributed.execute catalog network ~at:"stanford" query in
  let report = part.P.Distributed.report in
  check_b "partial" true (not report.P.Distributed.complete);
  check_b "dropped rewritings counted" true
    (report.P.Distributed.rewritings_dropped > 0);
  check_b "failed sites named" true (report.P.Distributed.sites_failed <> []);
  check_b "retries were spent" true (report.P.Distributed.retries > 0);
  let after = Obs.Metrics.snapshot () in
  check_b "pdms.distributed.partial nonzero" true
    (Obs.Metrics.counter_value after "pdms.distributed.partial"
     > Obs.Metrics.counter_value before "pdms.distributed.partial");
  check_b "pdms.net.retries nonzero" true
    (Obs.Metrics.counter_value after "pdms.net.retries"
     > Obs.Metrics.counter_value before "pdms.net.retries");
  (* Exactly the reachable side's tuples: titles are prefixed with the
     owning university's name. *)
  let reachable = [ "[stanford]"; "[berkeley]"; "[roma]" ] in
  let rows = rel_sorted part.P.Distributed.answers in
  check_b "only reachable tuples" true
    (rows <> []
    && List.for_all
         (fun row ->
           match row with
           | title :: _ ->
               List.exists
                 (fun p -> String.length title >= String.length p
                           && String.sub title 0 (String.length p) = p)
                 reachable
           | [] -> false)
         rows);
  let expected =
    List.fold_left
      (fun acc (name, n) ->
        if List.mem name [ "stanford"; "berkeley"; "roma" ] then acc + n
        else acc)
      0 d.Workload.University.course_counts
  in
  check_i "reachable cardinality" expected (List.length rows);
  (* Healing restores the full answer. *)
  P.Network.Fault.heal network;
  let healed = P.Distributed.execute catalog network ~at:"stanford" query in
  check_b "healed complete" true
    healed.P.Distributed.report.P.Distributed.complete;
  check_b "healed matches full" true
    (rel_sorted healed.P.Distributed.answers
    = rel_sorted full.P.Distributed.answers)

(* With faults disabled the result-typed path answers exactly what
   Answer.answer does, complete and retry-free, for any jobs. *)
let prop_distributed_no_faults_matches_answer =
  QCheck.Test.make
    ~name:"distributed = answer with faults off, complete (any jobs)"
    ~count:25
    (QCheck.make QCheck.Gen.(int_bound 10_000) ~print:string_of_int)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let kind =
        match seed mod 4 with
        | 0 -> P.Topology.Chain
        | 1 -> P.Topology.Star
        | 2 -> P.Topology.Ring
        | _ -> P.Topology.Mesh 1
      in
      let n = 4 + (seed mod 3) in
      let topology = P.Topology.generate ~prng kind ~n in
      let g = Workload.Peers_gen.generate prng ~topology ~tuples_per_peer:3 () in
      let catalog = g.Workload.Peers_gen.catalog in
      let names = List.init n (Printf.sprintf "p%d") in
      let network =
        P.Network.of_topology topology ~names ~base_latency_ms:5.0
      in
      let query = Workload.Peers_gen.course_query g ~at:(seed mod 2) in
      let jobs = 1 + (seed mod 4) in
      let plan =
        P.Distributed.execute ~exec:(P.Exec.with_jobs jobs) catalog network
          ~at:"p0" query
      in
      let direct = P.Answer.answer ~exec:(P.Exec.with_jobs jobs) catalog query in
      rel_sorted plan.P.Distributed.answers
      = rel_sorted direct.P.Answer.answers
      && plan.P.Distributed.report.P.Distributed.complete
      && plan.P.Distributed.report.P.Distributed.retries = 0)

(* Batch (trie) and per-rewriting evaluation agree everywhere the union
   is routed: Answer.answer and Distributed.execute, any jobs, faults
   on and off. *)
let prop_batch_matches_nobatch =
  QCheck.Test.make
    ~name:"batch trie = per-rewriting eval (answer + distributed, faults on/off)"
    ~count:20
    (QCheck.make QCheck.Gen.(int_bound 10_000) ~print:string_of_int)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let kind =
        match seed mod 4 with
        | 0 -> P.Topology.Chain
        | 1 -> P.Topology.Star
        | 2 -> P.Topology.Ring
        | _ -> P.Topology.Mesh 1
      in
      let n = 4 + (seed mod 3) in
      let topology = P.Topology.generate ~prng kind ~n in
      let g =
        Workload.Peers_gen.generate prng ~topology ~tuples_per_peer:3
          ~with_join:true ()
      in
      let catalog = g.Workload.Peers_gen.catalog in
      (* Join queries exercise real prefix sharing; plain course queries
         exercise the no-sharing degenerate trie. *)
      let query =
        if seed mod 2 = 0 then Workload.Peers_gen.course_query g ~at:0
        else Workload.Peers_gen.join_query g ~at:0
      in
      let jobs = 1 + (seed mod 4) in
      let batch_exec = P.Exec.make ~jobs () in
      let nobatch_exec = P.Exec.make ~jobs ~batch:false () in
      let a_batch = P.Answer.answer ~exec:batch_exec catalog query in
      let a_plain = P.Answer.answer ~exec:nobatch_exec catalog query in
      let names = List.init n (Printf.sprintf "p%d") in
      (* Odd seeds run the distributed comparison under a peer fault. *)
      let mk_net () =
        let network =
          P.Network.of_topology topology ~names ~base_latency_ms:5.0
        in
        if seed mod 2 = 1 then
          P.Network.Fault.fail_peer network (Printf.sprintf "p%d" (n - 1));
        network
      in
      let d_batch =
        P.Distributed.execute ~exec:batch_exec catalog (mk_net ()) ~at:"p0"
          query
      in
      let d_plain =
        P.Distributed.execute ~exec:nobatch_exec catalog (mk_net ()) ~at:"p0"
          query
      in
      P.Answer.answers_list a_batch = P.Answer.answers_list a_plain
      && rel_sorted d_batch.P.Distributed.answers
         = rel_sorted d_plain.P.Distributed.answers
      && d_batch.P.Distributed.report.P.Distributed.complete
         = d_plain.P.Distributed.report.P.Distributed.complete)

(* Keyword search degrades with the network: a downed peer's relations
   vanish from the ranking. *)
let test_keyword_skips_down_peer () =
  let catalog, _, _ = two_peer_catalog `Equality in
  let network = P.Network.create () in
  P.Network.connect network "uw" "mit" ~latency_ms:5.0;
  check_b "reachable peer answers" true
    (P.Keyword.search ~network catalog "databases" <> []);
  P.Network.Fault.fail_peer network "mit";
  check_i "down peer's tuples skipped" 0
    (List.length (P.Keyword.search ~network catalog "databases"));
  P.Network.Fault.heal_peer network "mit";
  check_b "heals back" true
    (P.Keyword.search ~network catalog "databases" <> [])

(* ------------------------------------------------------------------ *)
(* Kwindex: the inverted index must be indistinguishable from the
   brute-force scan — scores bit-identical, order and tie-breaks
   included — for any jobs value and any fault schedule. *)

let hit_key (h : P.Keyword.hit) =
  ( h.P.Keyword.peer,
    h.P.Keyword.stored_rel,
    Array.map Relalg.Value.to_string h.P.Keyword.tuple,
    Int64.bits_of_float h.P.Keyword.score )

let prop_indexed_matches_brute =
  QCheck.Test.make
    ~name:"indexed hits = brute hits (bit-identical scores, any jobs, faults)"
    ~count:25
    (QCheck.make QCheck.Gen.(int_bound 10_000) ~print:string_of_int)
    (fun seed ->
      let prng = Util.Prng.create (seed + 31) in
      let kind =
        match seed mod 4 with
        | 0 -> P.Topology.Chain
        | 1 -> P.Topology.Star
        | 2 -> P.Topology.Ring
        | _ -> P.Topology.Mesh 2
      in
      let n = 3 + (seed mod 4) in
      let topology = P.Topology.generate ~prng kind ~n in
      let g =
        Workload.Peers_gen.generate prng ~topology
          ~tuples_per_peer:(2 + (seed mod 5))
          ~with_join:(seed mod 2 = 0) ()
      in
      let catalog = g.Workload.Peers_gen.catalog in
      let network =
        if seed mod 3 = 0 then begin
          let net =
            P.Distributed.network_of_catalog catalog ~latency_ms:1.0
          in
          P.Network.Fault.fail_peer net (Printf.sprintf "p%d" (seed mod n));
          Some net
        end
        else None
      in
      let limit = 1 + (seed mod 7) in
      let query = Workload.Peers_gen.keyword_query g prng in
      let run exec =
        List.map hit_key (P.Keyword.search ~limit ~exec ?network catalog query)
      in
      let reference = run (P.Exec.make ~index:false ()) in
      reference = run (P.Exec.make ~index:false ~jobs:3 ())
      && List.for_all
           (fun jobs -> run (P.Exec.make ~jobs ()) = reference)
           [ 1; 3 ])

let kwindex_builds () =
  Obs.Metrics.counter_value (Obs.Metrics.snapshot ()) "pdms.kwindex.builds"

(* Incremental maintenance: a warm search rebuilds nothing; touching
   one relation reindexes that relation alone. *)
let test_kwindex_incremental () =
  let catalog = P.Catalog.create () in
  let pa = P.Peer.create ~name:"pa" ~schema:[ ("r", [ "x"; "y" ]) ] in
  let pb = P.Peer.create ~name:"pb" ~schema:[ ("s", [ "x"; "y" ]) ] in
  P.Catalog.add_peer catalog pa;
  P.Catalog.add_peer catalog pb;
  let ra = P.Catalog.store_identity catalog pa ~rel:"r" in
  let rb = P.Catalog.store_identity catalog pb ~rel:"s" in
  insert ra [| vs "cse444"; vs "databases" |];
  insert rb [| vs "cse451"; vs "operating systems" |];
  ignore (P.Keyword.search catalog "databases");
  let warm = kwindex_builds () in
  ignore (P.Keyword.search catalog "systems");
  check_i "warm repeat rebuilds nothing" warm (kwindex_builds ());
  let patched () =
    Obs.Metrics.counter_value (Obs.Metrics.snapshot ())
      "pdms.delta.patched_postings"
  in
  let patched0 = patched () in
  insert ra [| vs "cse452"; vs "distributed systems" |];
  let hits = P.Keyword.search catalog "distributed" in
  check_i "the touched relation patches, no rebuild" warm (kwindex_builds ());
  check_b "postings were patched" true (patched () > patched0);
  check_b "new tuple is searchable" true
    (List.exists
       (fun (h : P.Keyword.hit) ->
         Array.exists
           (fun v -> Relalg.Value.to_string v = "cse452")
           h.P.Keyword.tuple)
       hits)

(* Overflow evicts one LRU victim, not the whole store (the old token
   memo's Hashtbl.reset forced a thundering rebuild of everything). *)
let test_kwindex_lru_eviction () =
  P.Kwindex.reset ();
  let b0 = kwindex_builds () in
  let rel i =
    let r = Relalg.Relation.create (Relalg.Schema.make "r" [ "x" ]) in
    insert r [| vs (Printf.sprintf "tok%d" i) |];
    r
  in
  let rels = Array.init (P.Kwindex.max_entries + 5) rel in
  Array.iteri
    (fun i r ->
      ignore (P.Kwindex.get ~rel_name:(Printf.sprintf "r%d!" i) r))
    rels;
  check_i "store bounded at capacity" P.Kwindex.max_entries
    (P.Kwindex.store_size ());
  let filled = kwindex_builds () in
  check_i "every relation built exactly once"
    (b0 + P.Kwindex.max_entries + 5) filled;
  let last = Array.length rels - 1 in
  ignore (P.Kwindex.get ~rel_name:(Printf.sprintf "r%d!" last) rels.(last));
  check_i "recent entry survived the overflow" filled (kwindex_builds ());
  ignore (P.Kwindex.get ~rel_name:"r0!" rels.(0));
  check_i "oldest entry was evicted" (filled + 1) (kwindex_builds ());
  P.Kwindex.reset ()

let delta_fallbacks () =
  Obs.Metrics.counter_value (Obs.Metrics.snapshot ())
    "pdms.delta.rebuild_fallbacks"

(* The delta-patched index must be indistinguishable from rebuilding on
   every change: identical rendered hit lists over a random stream of
   inserts and deletes, for any jobs value, with faults on or off.  The
   stream stays far below the delta-log caps, so the incremental run
   must also never fall back to a rebuild. *)
let prop_kwindex_incremental_matches_rebuild =
  QCheck.Test.make
    ~name:"incremental index = rebuilt index under random delta streams"
    ~count:20
    (QCheck.make QCheck.Gen.(int_bound 10_000) ~print:string_of_int)
    (fun seed ->
      (* Both modes rebuild the same world from the seed: same catalog,
         same op stream, same queries — only [incremental] differs. *)
      let run incremental =
        P.Kwindex.reset ();
        let prng = Util.Prng.create (seed + 77) in
        let kind =
          match seed mod 3 with
          | 0 -> P.Topology.Chain
          | 1 -> P.Topology.Star
          | _ -> P.Topology.Ring
        in
        let n = 3 + (seed mod 3) in
        let topology = P.Topology.generate ~prng kind ~n in
        let g =
          Workload.Peers_gen.generate prng ~topology
            ~tuples_per_peer:(2 + (seed mod 4)) ()
        in
        let catalog = g.Workload.Peers_gen.catalog in
        let db = P.Catalog.global_db catalog in
        let names = List.sort String.compare (Relalg.Database.names db) in
        let network =
          if seed mod 2 = 0 then begin
            let net =
              P.Distributed.network_of_catalog catalog ~latency_ms:1.0
            in
            P.Network.Fault.fail_peer net (Printf.sprintf "p%d" (seed mod n));
            Some net
          end
          else None
        in
        let ops = Util.Prng.create (seed + 1234) in
        let query = Workload.Peers_gen.keyword_query g ops in
        let transcript = ref [] in
        for i = 0 to 11 do
          let rel =
            Relalg.Database.find db (Util.Prng.pick ops names)
          in
          let arity = Relalg.Schema.arity (Relalg.Relation.schema rel) in
          (match (Util.Prng.int ops 3, Relalg.Relation.tuples rel) with
          | (0 | 1), _ | _, [] ->
              let row =
                Array.init arity (fun _ ->
                    vs (Printf.sprintf "word%d" (Util.Prng.int ops 40)))
              in
              Relalg.Relation.apply rel (Relalg.Relation.Delta.add row)
          | _, rows ->
              Relalg.Relation.apply rel
                (Relalg.Relation.Delta.remove (Util.Prng.pick ops rows)));
          let exec =
            P.Exec.make ~jobs:(1 + (i mod 3)) ~incremental ()
          in
          let hits = P.Keyword.search ~limit:5 ~exec ?network catalog query in
          transcript :=
            List.rev_append (List.map P.Keyword.render_hit hits) !transcript
        done;
        !transcript
      in
      let f0 = delta_fallbacks () in
      let incr = run true in
      let no_fallbacks = delta_fallbacks () = f0 in
      let rebuilt = run false in
      P.Kwindex.reset ();
      incr = rebuilt && no_fallbacks)

(* Exceeding the bounded delta log forces one honest rebuild, counted
   in pdms.delta.rebuild_fallbacks; afterwards small deltas patch
   again. *)
let test_kwindex_truncation_fallback () =
  P.Kwindex.reset ();
  let r = Relalg.Relation.create (Relalg.Schema.make "t" [ "x"; "y" ]) in
  insert r [| vs "alpha"; vs "beta" |];
  ignore (P.Kwindex.get ~rel_name:"t!" r);
  let builds0 = kwindex_builds () in
  let f0 = delta_fallbacks () in
  for i = 0 to 599 do
    insert r [| vs (Printf.sprintf "w%d" i); vs "filler" |]
  done;
  check_b "log truncated past the cached version" true
    (Relalg.Relation.deltas_since r 1 = None);
  ignore (P.Kwindex.get ~rel_name:"t!" r);
  check_i "one full rebuild" (builds0 + 1) (kwindex_builds ());
  check_b "fallback counted" true (delta_fallbacks () > f0);
  insert r [| vs "gamma"; vs "delta" |];
  ignore (P.Kwindex.get ~rel_name:"t!" r);
  check_i "small delta patches again" (builds0 + 1) (kwindex_builds ());
  P.Kwindex.reset ()

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_hit_and_invalidate () =
  let catalog, uw, _ = two_peer_catalog `Equality in
  let cache = P.Cache.create catalog () in
  let query = q (atom "ans" [ v "X"; v "Y" ]) [ P.Peer.atom uw "course" [ v "X"; v "Y" ] ] in
  let r1 = P.Cache.answer cache query in
  check_i "first is a miss" 1 (P.Cache.misses cache);
  (* Alpha-equivalent query hits. *)
  let query' = q (atom "ans" [ v "A"; v "B" ]) [ P.Peer.atom uw "course" [ v "A"; v "B" ] ] in
  let r2 = P.Cache.answer cache query' in
  check_i "second is a hit" 1 (P.Cache.hits cache);
  check_b "same answers" true
    (P.Answer.answers_list r1 = P.Answer.answers_list r2);
  (* An updategram on the read relation invalidates the entry... *)
  let stored_pred = P.Peer.stored_pred (P.Catalog.peer catalog "mit") "subject" in
  check_i "one entry dropped" 1
    (P.Cache.invalidate cache (P.Updategram.make ~rel:stored_pred ()));
  check_i "cache empty" 0 (P.Cache.entries cache);
  (* ... and an unrelated one does not. *)
  ignore (P.Cache.answer cache query);
  check_i "nothing dropped" 0
    (P.Cache.invalidate cache (P.Updategram.make ~rel:"unrelated!" ()))

let test_cache_reflects_updates_after_invalidation () =
  let catalog, uw, mit = two_peer_catalog `Equality in
  let cache = P.Cache.create catalog () in
  let query = q (atom "ans" [ v "X"; v "Y" ]) [ P.Peer.atom uw "course" [ v "X"; v "Y" ] ] in
  check_i "before" 2
    (Relalg.Relation.cardinality (P.Cache.answer cache query).P.Answer.answers);
  (* New data arrives at MIT; the stale cache would miss it. *)
  let stored_pred = P.Peer.stored_pred mit "subject" in
  let stored = Relalg.Database.find (P.Peer.stored_db mit) stored_pred in
  insert stored [| vs "6.001"; vs "sicp" |];
  check_i "stale while cached" 2
    (Relalg.Relation.cardinality (P.Cache.answer cache query).P.Answer.answers);
  ignore (P.Cache.invalidate cache (P.Updategram.make ~rel:stored_pred ()));
  check_i "fresh after invalidation" 3
    (Relalg.Relation.cardinality (P.Cache.answer cache query).P.Answer.answers)

let test_cache_lru_eviction () =
  let catalog, uw, _ = two_peer_catalog `Equality in
  let cache = P.Cache.create ~capacity:2 catalog () in
  let mk pred =
    q (atom pred [ v "X"; v "Y" ]) [ P.Peer.atom uw "course" [ v "X"; v "Y" ] ]
  in
  ignore (P.Cache.answer cache (mk "q1"));
  ignore (P.Cache.answer cache (mk "q2"));
  ignore (P.Cache.answer cache (mk "q3"));
  check_i "capacity respected" 2 (P.Cache.entries cache);
  (* q1 was evicted: asking again misses. *)
  ignore (P.Cache.answer cache (mk "q1"));
  check_i "four misses" 4 (P.Cache.misses cache)

(* Eviction must be strictly least-recently-used: touching an entry via
   a hit protects it from the next eviction. *)
let test_cache_lru_touch_protects () =
  let catalog, uw, _ = two_peer_catalog `Equality in
  let cache = P.Cache.create ~capacity:2 catalog () in
  let mk pred =
    q (atom pred [ v "X"; v "Y" ]) [ P.Peer.atom uw "course" [ v "X"; v "Y" ] ]
  in
  ignore (P.Cache.answer cache (mk "q1"));
  ignore (P.Cache.answer cache (mk "q2"));
  (* Touch q1, making q2 the LRU; inserting q3 must evict q2. *)
  ignore (P.Cache.answer cache (mk "q1"));
  check_i "touch is a hit" 1 (P.Cache.hits cache);
  ignore (P.Cache.answer cache (mk "q3"));
  ignore (P.Cache.answer cache (mk "q1"));
  check_i "q1 survived" 2 (P.Cache.hits cache);
  ignore (P.Cache.answer cache (mk "q2"));
  check_i "q2 was the victim" 4 (P.Cache.misses cache)

(* The cache agrees with an executable reference model: an LRU list of
   bounded length. Checks hit/miss prediction and entry count after
   every access. *)
let prop_cache_lru_reference_model =
  QCheck.Test.make ~name:"cache matches reference LRU model" ~count:20
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 30) (int_bound 5))
       ~print:(fun l -> String.concat "," (List.map string_of_int l)))
    (fun accesses ->
      let catalog, uw, _ = two_peer_catalog `Equality in
      let capacity = 3 in
      let cache = P.Cache.create ~capacity catalog () in
      let mk i =
        q
          (atom (Printf.sprintf "q%d" i) [ v "X"; v "Y" ])
          [ P.Peer.atom uw "course" [ v "X"; v "Y" ] ]
      in
      let model = ref [] in
      List.for_all
        (fun i ->
          let hits0 = P.Cache.hits cache and misses0 = P.Cache.misses cache in
          ignore (P.Cache.answer cache (mk i));
          let expected_hit = List.mem i !model in
          model := i :: List.filter (fun j -> j <> i) !model;
          if List.length !model > capacity then
            model := List.filteri (fun k _ -> k < capacity) !model;
          (if expected_hit then
             P.Cache.hits cache = hits0 + 1 && P.Cache.misses cache = misses0
           else
             P.Cache.misses cache = misses0 + 1 && P.Cache.hits cache = hits0)
          && P.Cache.entries cache = List.length !model)
        accesses)

(* Invalidation removes exactly the entries whose rewritings read the
   updated predicate: independent peers, one entry each. *)
let test_cache_invalidate_exact () =
  let catalog = P.Catalog.create () in
  let peers =
    List.init 4 (fun i ->
        let p =
          P.Peer.create
            ~name:(Printf.sprintf "c%d" i)
            ~schema:[ ("course", [ "code"; "title" ]) ]
        in
        P.Catalog.add_peer catalog p;
        let stored = P.Catalog.store_identity catalog p ~rel:"course" in
        insert stored
          [| vs (Printf.sprintf "c%d" i); vs "title" |];
        p)
  in
  let query_of p =
    q (atom "ans" [ v "X"; v "Y" ]) [ P.Peer.atom p "course" [ v "X"; v "Y" ] ]
  in
  let cache = P.Cache.create catalog () in
  List.iter (fun p -> ignore (P.Cache.answer cache (query_of p))) peers;
  check_i "one entry per peer" 4 (P.Cache.entries cache);
  let target = P.Peer.stored_pred (List.nth peers 2) "course" in
  check_i "exactly one dropped" 1
    (P.Cache.invalidate cache (P.Updategram.make ~rel:target ()));
  check_i "three remain" 3 (P.Cache.entries cache);
  (* The survivors are precisely the other peers' entries: they hit. *)
  let hits0 = P.Cache.hits cache in
  List.iteri
    (fun i p -> if i <> 2 then ignore (P.Cache.answer cache (query_of p)))
    peers;
  check_i "others still cached" (hits0 + 3) (P.Cache.hits cache)

(* The incremental invalidation probe keeps an entry when no rewriting
   atom over the touched relation unifies with any changed tuple, and
   drops the rest; the non-incremental baseline drops every reader. *)
let test_cache_delta_probe () =
  let catalog, uw, mit = two_peer_catalog `Equality in
  let stored = P.Peer.stored_pred mit "subject" in
  let pinned =
    q (atom "ans" [ v "Y" ])
      [ P.Peer.atom uw "course" [ Term.Const (vs "6.033"); v "Y" ] ]
  in
  let broad =
    q (atom "ans" [ v "X"; v "Y" ]) [ P.Peer.atom uw "course" [ v "X"; v "Y" ] ]
  in
  let kept () =
    Obs.Metrics.counter_value (Obs.Metrics.snapshot ()) "pdms.delta.cache_kept"
  in
  let cache = P.Cache.create catalog () in
  let fill () =
    ignore (P.Cache.answer cache pinned);
    ignore (P.Cache.answer cache broad);
    check_i "two entries cached" 2 (P.Cache.entries cache)
  in
  fill ();
  let k0 = kept () in
  let u =
    P.Updategram.make ~rel:stored ~inserts:[ [| vs "6.001"; vs "sicp" |] ] ()
  in
  check_i "only the unifying reader drops" 1 (P.Cache.invalidate cache u);
  check_i "pinned entry survives" 1 (P.Cache.entries cache);
  check_b "survivor counted in pdms.delta.cache_kept" true (kept () > k0);
  check_i "a tuple matching the constant takes the survivor" 1
    (P.Cache.invalidate cache
       (P.Updategram.make ~rel:stored
          ~inserts:[ [| vs "6.033"; vs "recitation" |] ]
          ()));
  check_i "cache drained" 0 (P.Cache.entries cache);
  (* The rebuild-everything baseline drops both readers at once. *)
  fill ();
  check_i "non-incremental drops all readers" 2
    (P.Cache.invalidate ~exec:(P.Exec.with_incremental false) cache u)

(* When every mapping is an inclusion with single-atom sides, the PDMS
   semantics coincides with a datalog program; the reformulation answers
   must match naive bottom-up evaluation exactly. *)
let test_datalog_reference_agreement () =
  let prng = Util.Prng.create 123 in
  let n = 5 in
  let catalog = P.Catalog.create () in
  let peers =
    Array.init n (fun i ->
        let p =
          P.Peer.create ~name:(Printf.sprintf "d%d" i)
            ~schema:[ ("course", [ "code"; "title" ]) ]
        in
        P.Catalog.add_peer catalog p;
        let stored = P.Catalog.store_identity catalog p ~rel:"course" in
        for k = 1 to 3 do
          insert stored
            [| vs (Printf.sprintf "c%d_%d" i k);
               vs (Printf.sprintf "t%d" (Util.Prng.int prng 4)) |]
        done;
        p)
  in
  (* Random acyclic inclusions: data flows from higher to lower ids. *)
  let rules = ref [] in
  for i = 1 to n - 1 do
    let target = Util.Prng.int prng i in
    let args = [ v "X"; v "Y" ] in
    let lhs = q (atom "m" args) [ P.Peer.atom peers.(i) "course" args ] in
    let rhs = q (atom "m" args) [ P.Peer.atom peers.(target) "course" args ] in
    ignore (P.Catalog.add_mapping catalog (P.Peer_mapping.inclusion ~lhs ~rhs));
    (* The equivalent datalog rule: target.course :- source.course. *)
    rules :=
      q (P.Peer.atom peers.(target) "course" args)
        [ P.Peer.atom peers.(i) "course" args ]
      :: !rules
  done;
  (* Plus: each peer relation holds its own stored data. *)
  Array.iter
    (fun p ->
      rules :=
        q (P.Peer.atom p "course" [ v "X"; v "Y" ])
          [ P.Peer.stored_atom p "course" [ v "X"; v "Y" ] ]
        :: !rules)
    peers;
  let query =
    q (atom "ans" [ v "X"; v "Y" ]) [ P.Peer.atom peers.(0) "course" [ v "X"; v "Y" ] ]
  in
  let via_pdms = P.Answer.answers_list (P.Answer.answer catalog query) in
  let reference =
    Cq.Datalog.query (P.Catalog.global_db catalog) !rules query
    |> Relalg.Relation.tuples
    |> List.map (fun row -> Array.to_list (Array.map Relalg.Value.to_string row))
    |> List.sort compare
  in
  check_b "pdms = datalog reference" true (via_pdms = reference)

(* ------------------------------------------------------------------ *)
(* PDMS file format *)

let pdms_text = {file|
# two universities, one equality mapping
peer uw
relation course(code, title)

peer mit
relation subject(id, name)
store subject
row subject: 6.033 | systems
row subject: 6.830 | databases

mapping equality
lhs m(C, T) :- mit.subject(C, T)
rhs m(C, T) :- uw.course(C, T)
|file}

let test_pdms_file_parse_and_answer () =
  let catalog = P.Pdms_file.parse_exn pdms_text in
  check_i "two peers" 2 (List.length (P.Catalog.peers catalog));
  check_i "one mapping" 1 (P.Catalog.mapping_count catalog);
  let query = Cq.Parser.parse_query_exn "ans(C, T) :- uw.course(C, T)" in
  let result = P.Answer.answer catalog query in
  check_i "answers flow" 2 (Relalg.Relation.cardinality result.P.Answer.answers)

let test_pdms_file_roundtrip () =
  let catalog = P.Pdms_file.parse_exn pdms_text in
  let rendered = P.Pdms_file.render catalog in
  let catalog' = P.Pdms_file.parse_exn rendered in
  check_i "peers survive" 2 (List.length (P.Catalog.peers catalog'));
  check_i "mappings survive" 1 (P.Catalog.mapping_count catalog');
  let query = Cq.Parser.parse_query_exn "ans(C, T) :- uw.course(C, T)" in
  check_b "same answers" true
    (P.Answer.answers_list (P.Answer.answer catalog query)
    = P.Answer.answers_list (P.Answer.answer catalog' query))

let prop_pdms_file_roundtrip =
  QCheck.Test.make ~name:"pdms_file render/parse preserves answers" ~count:40
    (QCheck.make QCheck.Gen.(int_bound 10_000) ~print:string_of_int)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let topology = P.Topology.generate P.Topology.Chain ~n:4 in
      let g = Workload.Peers_gen.generate prng ~topology ~tuples_per_peer:2 () in
      let catalog = g.Workload.Peers_gen.catalog in
      let catalog' = P.Pdms_file.parse_exn (P.Pdms_file.render catalog) in
      let query = Workload.Peers_gen.course_query g ~at:0 in
      P.Answer.answers_list (P.Answer.answer catalog query)
      = P.Answer.answers_list (P.Answer.answer catalog' query))

(* Field-level inverse: parse_value (render_value v) = v for every
   value the format can express (everything but Null, which has no row
   syntax; floats round-trip since render keeps a decimal point). *)
let gen_roundtrippable_value =
  QCheck.Gen.(
    let tricky_string =
      oneof
        [ (* numeric- and boolean-looking strings must come back Str *)
          oneofl [ "42"; "-7"; "6.830"; "1e3"; "true"; "false"; "0x1f" ];
          map string_of_int int;
          (* pipes, whitespace, quote-wrapping *)
          oneofl
            [ "a | b"; " padded "; "\ttab"; "trailing "; "'quoted'"; "''";
              "mid'quote"; "'"; "null" ];
          string_size ~gen:(char_range ' ' '~') (int_bound 15) ]
    in
    oneof
      [ map (fun b -> Relalg.Value.Bool b) bool;
        map (fun i -> Relalg.Value.Int i) int;
        map (fun f -> Relalg.Value.Float f) (float_bound_inclusive 1e9);
        map (fun i -> Relalg.Value.Float (float_of_int i)) (int_bound 1000);
        map (fun s -> Relalg.Value.Str s) tricky_string ])

let prop_pdms_value_roundtrip =
  QCheck.Test.make ~name:"pdms_file value render/parse inverse" ~count:1000
    (QCheck.make gen_roundtrippable_value
       ~print:(fun v -> P.Pdms_file.render_value v))
    (fun v ->
      Relalg.Value.equal (P.Pdms_file.parse_value (P.Pdms_file.render_value v)) v)

(* Catalog-level: rows whose values used to be mangled (numeric-looking
   course codes, pipes, padding) must survive render -> parse. *)
let test_pdms_file_tricky_rows () =
  let catalog = P.Catalog.create () in
  let uw = P.Peer.create ~name:"uw" ~schema:[ ("course", [ "code"; "title" ]) ] in
  P.Catalog.add_peer catalog uw;
  let stored = P.Catalog.store_identity catalog uw ~rel:"course" in
  let rows =
    [ [| vs "6.830"; vs "databases" |];
      [| vs "42"; vs "meaning | of life" |];
      [| vs " padded "; vs "true" |];
      [| vs "'already quoted'"; Relalg.Value.Float 2.0 |];
      [| Relalg.Value.Int 7; Relalg.Value.Bool false |] ]
  in
  List.iter (insert stored) rows;
  let rendered = P.Pdms_file.render catalog in
  let catalog' = P.Pdms_file.parse_exn rendered in
  let stored' =
    Relalg.Database.find (P.Catalog.global_db catalog') "uw.course!"
  in
  check_b "tuples survive in order" true
    (Relalg.Relation.tuples stored' = rows);
  check_b "schema survives" true
    (Relalg.Schema.attrs (Relalg.Relation.schema stored')
    = Relalg.Schema.attrs (Relalg.Relation.schema stored));
  (* Render is a fixpoint of render -> parse -> render. *)
  check_b "text fixpoint" true (P.Pdms_file.render catalog' = rendered)

(* ------------------------------------------------------------------ *)
(* Durability: snapshot + WAL recovery (Persist). *)

let temp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "revere-persist-%d-%d" (Unix.getpid ()) !n)
    in
    Unix.mkdir dir 0o755;
    dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Copy a data directory, truncating the WAL to [wal_bytes] — the
   injected crash: everything the OS had by that point survives,
   nothing after does. *)
let copy_dir_with_crash src wal_bytes =
  let dst = temp_dir () in
  Array.iter
    (fun name ->
      let s = read_file (Filename.concat src name) in
      let s =
        if name = "wal.log" && String.length s > wal_bytes then
          String.sub s 0 wal_bytes
        else s
      in
      write_file (Filename.concat dst name) s)
    (Sys.readdir src);
  dst

(* A deterministic full-state transcript: every stored tuple in order,
   a ranked keyword search, and a reformulated answer.  Recovery is
   correct exactly when this string is byte-identical. *)
let persist_transcript ?(exec = P.Exec.default) t =
  let catalog = P.Persist.catalog t and db = P.Persist.db t in
  let b = Buffer.create 2048 in
  List.iter
    (fun name ->
      let rel = Relalg.Database.find db name in
      Buffer.add_string b (name ^ ":\n");
      List.iter
        (fun row ->
          Buffer.add_string b
            (String.concat " | "
               (Array.to_list (Array.map P.Pdms_file.render_value row)));
          Buffer.add_char b '\n')
        (Relalg.Relation.tuples rel))
    (List.sort compare (Relalg.Database.names db));
  List.iter
    (fun (h : P.Keyword.hit) ->
      Buffer.add_string b
        (Printf.sprintf "%.6f %s/%s %s\n" h.P.Keyword.score h.P.Keyword.peer
           h.P.Keyword.stored_rel
           (String.concat "|"
              (Array.to_list (Array.map Relalg.Value.to_string h.P.Keyword.tuple)))))
    (P.Keyword.search ~exec catalog "introduction seminar advanced");
  let stanford = P.Catalog.peer catalog "stanford" in
  List.iter
    (fun row -> Buffer.add_string b (String.concat "," row ^ "\n"))
    (P.Answer.answers_list
       (P.Answer.answer ~exec catalog (Workload.University.course_query stanford)));
  Buffer.contents b

let six_university_persist seed =
  let prng = Util.Prng.create seed in
  let d = Workload.University.build_delearning prng ~courses_per_peer:2 in
  let dir = temp_dir () in
  P.Persist.init ~dir d.Workload.University.catalog;
  (dir, P.Persist.open_dir_exn dir, prng)

(* Random effective updategram against a random stored relation. *)
let random_gram prng db gram_no =
  let names = Array.of_list (Relalg.Database.names db) in
  let rel_name = Util.Prng.pick_arr prng names in
  let rel = Relalg.Database.find db rel_name in
  let arity = Relalg.Schema.arity (Relalg.Relation.schema rel) in
  let fresh i =
    Array.init arity (fun j ->
        if j = arity - 1 && Util.Prng.bool prng then
          Relalg.Value.Int (Util.Prng.int prng 500)
        else vs (Printf.sprintf "seminar g%d-%d-%d" gram_no i j))
  in
  let inserts = List.init (Util.Prng.int prng 3) fresh in
  let deletes =
    let existing = Relalg.Relation.tuples rel in
    List.filteri (fun i _ -> i < 2 && Util.Prng.bool prng) existing
    @ (if Util.Prng.bernoulli prng 0.3 then [ fresh 99 ] else [])
  in
  P.Updategram.make ~rel:rel_name ~inserts ~deletes ()

let test_persist_init_apply_reopen () =
  let dir, t, prng = six_university_persist 11 in
  for g = 1 to 5 do
    P.Persist.apply ~sync:(g mod 2 = 0) t (random_gram prng (P.Persist.db t) g)
  done;
  ignore (P.Persist.snapshot t);
  P.Persist.apply ~sync:true t (random_gram prng (P.Persist.db t) 6);
  let live = persist_transcript t in
  P.Persist.close t;
  let t' = P.Persist.open_dir_exn dir in
  check_b "reopen reproduces the live state byte-for-byte" true
    (persist_transcript t' = live);
  check_b "appends continue past recovery" true
    (P.Persist.wal_seq t' >= 1);
  P.Persist.close t';
  check_b "fsck passes" true (P.Persist.fsck_ok (P.Persist.fsck dir))

let test_persist_fsck_detects_damage () =
  let dir, t, prng = six_university_persist 12 in
  P.Persist.apply ~sync:true t (random_gram prng (P.Persist.db t) 1);
  P.Persist.close t;
  check_b "intact dir is ok" true (P.Persist.fsck_ok (P.Persist.fsck dir));
  (* A WAL record against a relation the snapshot does not know cannot
     replay: fsck must fail rather than let recovery throw later. *)
  (match Storage.Wal.open_dir ~dir with
  | Ok (w, _) ->
      ignore
        (Storage.Wal.append w ~rel:"nowhere.gone!"
           (Relalg.Relation.Delta.of_rows [ [| vs "x" |] ]));
      Storage.Wal.close w
  | Error m -> Alcotest.fail m);
  let r = P.Persist.fsck dir in
  check_b "unknown relation caught" false (P.Persist.fsck_ok r);
  (* Losing every snapshot is unrecoverable and must be reported. *)
  let dir2, t2, _ = six_university_persist 13 in
  P.Persist.close t2;
  Array.iter
    (fun n ->
      if Filename.check_suffix n ".snap" then
        Sys.remove (Filename.concat dir2 n))
    (Sys.readdir dir2);
  check_b "no snapshot caught" false (P.Persist.fsck_ok (P.Persist.fsck dir2))

(* The crash-consistency sweep: kill the process at every byte boundary
   of the WAL's tail record; recovery must land exactly on the state
   the surviving prefix described, and fsck must pass. *)
let test_persist_kill_point_sweep () =
  let dir, t, prng = six_university_persist 21 in
  (* Three effective grams; remember (wal size, transcript) after each. *)
  let states = ref [ (P.Persist.wal_size t, persist_transcript t) ] in
  for g = 1 to 3 do
    let before = P.Persist.wal_seq t in
    let rec effective n =
      P.Persist.apply ~sync:true t (random_gram prng (P.Persist.db t) (10 * g));
      if P.Persist.wal_seq t = before && n < 20 then effective (n + 1)
    in
    effective 0;
    states := (P.Persist.wal_size t, persist_transcript t) :: !states
  done;
  let states = List.rev !states in
  P.Persist.close t;
  let sizes = List.map fst states in
  let tail_start = List.nth sizes (List.length sizes - 2) in
  let tail_end = List.nth sizes (List.length sizes - 1) in
  check_b "tail record is non-empty" true (tail_end > tail_start);
  for cut = tail_start to tail_end do
    let crashed = copy_dir_with_crash dir cut in
    let expected =
      (* The last state whose WAL prefix fully survived the crash. *)
      List.fold_left
        (fun acc (size, tr) -> if size <= cut then Some tr else acc)
        None states
      |> Option.get
    in
    check_b
      (Printf.sprintf "fsck at kill point %d" cut)
      true
      (P.Persist.fsck_ok (P.Persist.fsck crashed));
    let t' = P.Persist.open_dir_exn crashed in
    let got = persist_transcript t' in
    P.Persist.close t';
    if got <> expected then
      Alcotest.failf "kill point %d: recovered state diverges" cut
  done

(* Property: random gram streams, snapshots at random points, a crash
   at a random WAL byte offset — under any jobs setting the recovered
   transcript is byte-identical to the surviving prefix's. *)
let prop_persist_crash_recovery =
  QCheck.Test.make ~name:"crash recovery = surviving prefix (random streams)"
    ~count:20
    (QCheck.make QCheck.Gen.(int_bound 100_000) ~print:string_of_int)
    (fun seed ->
      let exec = P.Exec.with_jobs (1 + (seed mod 2)) in
      let dir, t, prng = six_university_persist seed in
      (* (wal seq, wal size, transcript) after init and every apply;
         snapshots interleave at random points. *)
      let states =
        ref [ (0, P.Persist.wal_size t, persist_transcript ~exec t) ]
      in
      let snap_seqs = ref [ 0 ] in
      for g = 1 to 6 do
        P.Persist.apply ~exec ~sync:(Util.Prng.bool prng) t
          (random_gram prng (P.Persist.db t) g);
        states :=
          (P.Persist.wal_seq t, P.Persist.wal_size t, persist_transcript ~exec t)
          :: !states;
        if Util.Prng.bernoulli prng 0.25 then begin
          ignore (P.Persist.snapshot t);
          snap_seqs := P.Persist.wal_seq t :: !snap_seqs
        end
      done;
      let states = List.rev !states in
      let final_size = P.Persist.wal_size t in
      P.Persist.close t;
      let snap_max = List.fold_left max 0 !snap_seqs in
      (* Crash at a random byte offset across the whole log. *)
      let cut = Util.Prng.int prng (final_size + 1) in
      let crashed = copy_dir_with_crash dir cut in
      (* Expected: the newest snapshot always survives (snapshot files
         are not truncated), so recovery lands on the later of (newest
         snapshot, last fully-durable WAL record). *)
      let surviving_seq =
        List.fold_left
          (fun acc (seq, size, _) -> if size <= cut then max acc seq else acc)
          0 states
      in
      let expect_seq = max snap_max surviving_seq in
      let expected =
        match List.find_opt (fun (seq, _, _) -> seq = expect_seq) states with
        | Some (_, _, tr) -> tr
        | None -> Alcotest.failf "no recorded state for seq %d" expect_seq
      in
      let ok_fsck = P.Persist.fsck_ok (P.Persist.fsck crashed) in
      let t' = P.Persist.open_dir_exn ~exec crashed in
      let got = persist_transcript ~exec t' in
      P.Persist.close t';
      ok_fsck && got = expected)

(* ------------------------------------------------------------------ *)
(* Parallel answer path: jobs > 1 must be invisible in the results. *)

let test_parallel_answer_delearning () =
  let prng = Util.Prng.create 2003 in
  let d = Workload.University.build_delearning prng ~courses_per_peer:3 in
  List.iter
    (fun (_, peer) ->
      let seq =
        P.Answer.answers_list
          (P.Answer.answer ~exec:(P.Exec.with_jobs 1) d.Workload.University.catalog
             (Workload.University.course_query peer))
      and par =
        P.Answer.answers_list
          (P.Answer.answer ~exec:(P.Exec.with_jobs 4) d.Workload.University.catalog
             (Workload.University.course_query peer))
      in
      check_b "jobs=4 = jobs=1 (delearning)" true (seq = par);
      check_b "non-trivial answers" true (seq <> []))
    d.Workload.University.peers;
  (* The cross-relation join query too. *)
  let _, stanford = List.hd d.Workload.University.peers in
  let jq = Workload.University.course_instructor_query stanford in
  check_b "join query agrees" true
    (P.Answer.answers_list
       (P.Answer.answer ~exec:(P.Exec.with_jobs 1) d.Workload.University.catalog jq)
    = P.Answer.answers_list
        (P.Answer.answer ~exec:(P.Exec.with_jobs 4) d.Workload.University.catalog jq))

let prop_parallel_answer_matches_sequential =
  QCheck.Test.make ~name:"answer ~jobs:4 = ~jobs:1 on perturbed topologies"
    ~count:25
    (QCheck.make QCheck.Gen.(int_bound 10_000) ~print:string_of_int)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let kind =
        match seed mod 4 with
        | 0 -> P.Topology.Chain
        | 1 -> P.Topology.Star
        | 2 -> P.Topology.Ring
        | _ -> P.Topology.Mesh 1
      in
      let topology = P.Topology.generate ~prng kind ~n:(4 + (seed mod 3)) in
      let g = Workload.Peers_gen.generate prng ~topology ~tuples_per_peer:3 () in
      let catalog = g.Workload.Peers_gen.catalog in
      let query = Workload.Peers_gen.course_query g ~at:(seed mod 2) in
      P.Answer.answers_list (P.Answer.answer ~exec:(P.Exec.with_jobs 1) catalog query)
      = P.Answer.answers_list (P.Answer.answer ~exec:(P.Exec.with_jobs 4) catalog query))

(* The parallel subsumption sweep must be invisible in the rewritings:
   same queries, same order, for every [jobs]. *)
let prop_parallel_reformulation_matches_sequential =
  QCheck.Test.make
    ~name:"reformulate ~jobs:4 emits identical rewritings to ~jobs:1"
    ~count:25
    (QCheck.make QCheck.Gen.(int_bound 10_000) ~print:string_of_int)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let kind =
        match seed mod 4 with
        | 0 -> P.Topology.Chain
        | 1 -> P.Topology.Star
        | 2 -> P.Topology.Ring
        | _ -> P.Topology.Mesh 2
      in
      let topology = P.Topology.generate ~prng kind ~n:(4 + (seed mod 3)) in
      let g = Workload.Peers_gen.generate prng ~topology ~tuples_per_peer:1 () in
      let catalog = g.Workload.Peers_gen.catalog in
      let query = Workload.Peers_gen.course_query g ~at:(seed mod 2) in
      let rewritten jobs =
        List.map Query.to_string
          (P.Reformulate.reformulate ~exec:(P.Exec.with_jobs jobs) catalog
             query)
            .P.Reformulate
            .rewritings
      in
      let seq = rewritten 1 in
      seq <> [] && seq = rewritten 4)

let test_parallel_keyword_ranking () =
  let catalog, _, _ = two_peer_catalog `Equality in
  let seq = P.Keyword.search ~exec:(P.Exec.with_jobs 1) catalog "databases systems"
  and par = P.Keyword.search ~exec:(P.Exec.with_jobs 4) catalog "databases systems" in
  check_b "keyword hits found" true (seq <> []);
  check_b "jobs=4 ranking identical" true (seq = par)

let test_pdms_file_errors () =
  check_b "row before store" true
    (Result.is_error
       (P.Pdms_file.parse "peer a\nrelation r(x)\nrow r: 1"));
  check_b "mapping without rhs" true
    (Result.is_error
       (P.Pdms_file.parse "peer a\nrelation r(x)\nstore r\nmapping equality\nlhs m(X) :- a.r(X)"));
  check_b "junk line" true (Result.is_error (P.Pdms_file.parse "frobnicate"))

(* ------------------------------------------------------------------ *)
(* Update propagation to replicas *)

let test_propagate_to_remote_replica () =
  let catalog, uw, mit = two_peer_catalog `Equality in
  ignore uw;
  let prop = P.Propagate.create catalog in
  (* MIT materialises ITS OWN view; UW materialises a replica of the
     same logical data through the mapping. *)
  let q_uw =
    q (atom "cal" [ v "X"; v "Y" ])
      [ P.Peer.atom (P.Catalog.peer catalog "uw") "course" [ v "X"; v "Y" ] ]
  in
  let n = P.Propagate.materialise prop ~name:"uw-cal" ~at:"uw" q_uw in
  check_i "replica starts with mit's data" 2 n;
  (* A new course appears in MIT's stored relation. *)
  let stored_pred = P.Peer.stored_pred mit "subject" in
  let touched =
    P.Propagate.push prop
      (P.Updategram.make ~rel:stored_pred
         ~inserts:[ [| vs "6.001"; vs "sicp" |] ] ())
  in
  check_b "replica touched" true (List.mem ("uw-cal", "uw") touched);
  check_i "replica grew" 3 (P.Propagate.cardinality prop ~name:"uw-cal");
  (* Retraction flows too. *)
  ignore
    (P.Propagate.push prop
       (P.Updategram.make ~rel:stored_pred
          ~deletes:[ [| vs "6.001"; vs "sicp" |] ] ()));
  check_i "replica shrank" 2 (P.Propagate.cardinality prop ~name:"uw-cal")

let test_propagate_multiple_replicas_consistent () =
  let catalog, uw, mit = two_peer_catalog `Equality in
  let prop = P.Propagate.create catalog in
  let q_uw =
    q (atom "a" [ v "X"; v "Y" ]) [ P.Peer.atom uw "course" [ v "X"; v "Y" ] ]
  in
  let q_mit =
    q (atom "b" [ v "X"; v "Y" ]) [ P.Peer.atom mit "subject" [ v "X"; v "Y" ] ]
  in
  ignore (P.Propagate.materialise prop ~name:"at-uw" ~at:"uw" q_uw);
  ignore (P.Propagate.materialise prop ~name:"at-mit" ~at:"mit" q_mit);
  let stored_pred = P.Peer.stored_pred mit "subject" in
  let touched =
    P.Propagate.push prop
      (P.Updategram.make ~rel:stored_pred
         ~inserts:[ [| vs "6.001"; vs "sicp" |] ] ())
  in
  check_i "both replicas touched" 2 (List.length touched);
  check_i "uw view" 3 (P.Propagate.cardinality prop ~name:"at-uw");
  check_i "mit view" 3 (P.Propagate.cardinality prop ~name:"at-mit");
  (* An updategram on an unrelated relation touches nothing. *)
  check_i "unrelated untouched" 0
    (List.length
       (P.Propagate.push prop (P.Updategram.make ~rel:"nosuch!" ~inserts:[] ())))

(* A downed replica host cannot take the delta: the push reports it
   lagging and serving stale answers while the reachable replica
   converges; healing the peer and reconciling replays the backlog and
   catches the replica up with the survivors. *)
let test_propagate_lag_and_reconcile () =
  let catalog, uw, mit = two_peer_catalog `Equality in
  let prop = P.Propagate.create catalog in
  let q_uw =
    q (atom "a" [ v "X"; v "Y" ]) [ P.Peer.atom uw "course" [ v "X"; v "Y" ] ]
  in
  let q_mit =
    q (atom "b" [ v "X"; v "Y" ]) [ P.Peer.atom mit "subject" [ v "X"; v "Y" ] ]
  in
  ignore (P.Propagate.materialise prop ~name:"at-uw" ~at:"uw" q_uw);
  ignore (P.Propagate.materialise prop ~name:"at-mit" ~at:"mit" q_mit);
  let network = P.Distributed.network_of_catalog catalog ~latency_ms:1.0 in
  P.Network.Fault.fail_peer network "uw";
  let stored = P.Peer.stored_pred mit "subject" in
  let push row =
    P.Propagate.push prop ~network
      (P.Updategram.make ~rel:stored ~inserts:[ row ] ())
  in
  let touched = push [| vs "6.001"; vs "sicp" |] in
  check_b "mit's own replica converged" true
    (List.mem ("at-mit", "mit") touched);
  check_b "uw replica not in the converged set" false
    (List.mem ("at-uw", "uw") touched);
  check_i "uw backlog of one" 1 (List.assoc "at-uw" (P.Propagate.lagging prop));
  check_i "mit view grew" 3 (P.Propagate.cardinality prop ~name:"at-mit");
  check_i "uw serves stale answers" 2
    (P.Propagate.cardinality prop ~name:"at-uw");
  (* While down, a second update deepens the backlog. *)
  ignore (push [| vs "6.004"; vs "computation structures" |]);
  check_i "uw backlog of two" 2 (List.assoc "at-uw" (P.Propagate.lagging prop));
  check_b "reconcile fails while still down" false
    (P.Propagate.reconcile prop ~network ~name:"at-uw");
  check_i "backlog kept on failure" 2
    (List.assoc "at-uw" (P.Propagate.lagging prop));
  P.Network.Fault.heal_peer network "uw";
  check_b "reconcile succeeds after heal" true
    (P.Propagate.reconcile prop ~network ~name:"at-uw");
  check_i "no lagging replicas" 0 (List.length (P.Propagate.lagging prop));
  check_i "uw caught up" 4 (P.Propagate.cardinality prop ~name:"at-uw");
  check_i "mit caught up too" 4 (P.Propagate.cardinality prop ~name:"at-mit")

(* ------------------------------------------------------------------ *)
(* Observability: tracing must be invisible in the answers, and the
   span tree must reflect the answer path's phases. *)

(* answers_list with the memory sink on vs. trace off must be
   byte-identical, for any jobs — instrumentation cannot perturb
   evaluation. *)
let prop_trace_changes_no_answers =
  QCheck.Test.make ~name:"memory-sink trace changes no answers (any jobs)"
    ~count:25
    (QCheck.make QCheck.Gen.(int_bound 10_000) ~print:string_of_int)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let kind =
        match seed mod 4 with
        | 0 -> P.Topology.Chain
        | 1 -> P.Topology.Star
        | 2 -> P.Topology.Ring
        | _ -> P.Topology.Mesh 1
      in
      let topology = P.Topology.generate ~prng kind ~n:(4 + (seed mod 3)) in
      let g = Workload.Peers_gen.generate prng ~topology ~tuples_per_peer:3 () in
      let catalog = g.Workload.Peers_gen.catalog in
      let query = Workload.Peers_gen.course_query g ~at:(seed mod 2) in
      let jobs = 1 + (seed mod 4) in
      let plain =
        P.Answer.answers_list
          (P.Answer.answer ~exec:(P.Exec.with_jobs jobs) catalog query)
      in
      let sink = Obs.Sink.memory () in
      let traced_exec =
        P.Exec.make ~jobs ~trace:(Obs.Trace.create sink) ()
      in
      let traced =
        P.Answer.answers_list (P.Answer.answer ~exec:traced_exec catalog query)
      in
      plain = traced && List.length (Obs.Sink.spans sink) = 1)

let test_answer_span_tree () =
  let prng = Util.Prng.create 2003 in
  let d = Workload.University.build_delearning prng ~courses_per_peer:3 in
  let _, stanford = List.hd d.Workload.University.peers in
  let sink = Obs.Sink.memory () in
  let exec = P.Exec.make ~trace:(Obs.Trace.create sink) () in
  let result =
    P.Answer.answer ~exec d.Workload.University.catalog
      (Workload.University.course_query stanford)
  in
  check_b "answers found" true (P.Answer.answers_list result <> []);
  match Obs.Sink.spans sink with
  | [ root ] ->
      (* The exact phase sequence of the answer path, in order; batch
         evaluation nests the trie planner and walk under "eval". *)
      Alcotest.(check (list string))
        "phases in order"
        [ "answer"; "reformulate"; "sweep"; "eval"; "plan"; "trie_eval" ]
        (Obs.Span.names root);
      let sweep = Option.get (Obs.Span.find root "sweep") in
      let attr_i name sp =
        match List.assoc_opt name sp.Obs.Span.attrs with
        | Some (Obs.Span.Int i) -> i
        | _ -> Alcotest.failf "missing int attr %s" name
      in
      check_b "sweep saw the rewritings" true (attr_i "input" sweep > 0);
      let eval = Option.get (Obs.Span.find root "eval") in
      check_i "eval answers attr matches result" (attr_i "answers" eval)
        (List.length (P.Answer.answers_list result));
      check_b "reformulate counts rewritings" true
        (attr_i "rewritings" (Option.get (Obs.Span.find root "reformulate"))
         > 0)
  | spans -> Alcotest.failf "expected one root span, got %d" (List.length spans)

let test_cache_stats_accessor () =
  let catalog, uw, mit = two_peer_catalog `Equality in
  let cache = P.Cache.create ~capacity:2 catalog () in
  let query i =
    q (atom "ans" [ v "X"; v "Y"; Term.Const (vs (string_of_int i)) ])
      [ P.Peer.atom uw "course" [ v "X"; v "Y" ] ]
  in
  let s0 = P.Cache.stats cache in
  check_i "fresh hits" 0 s0.P.Cache.hits;
  check_i "fresh misses" 0 s0.P.Cache.misses;
  ignore (P.Cache.answer cache (query 0));
  ignore (P.Cache.answer cache (query 0));
  ignore (P.Cache.answer cache (query 1));
  let s1 = P.Cache.stats cache in
  check_i "one hit" 1 s1.P.Cache.hits;
  check_i "two misses" 2 s1.P.Cache.misses;
  check_i "no evictions yet" 0 s1.P.Cache.evictions;
  (* Overflow the capacity-2 cache: the third distinct query evicts. *)
  ignore (P.Cache.answer cache (query 2));
  check_i "one eviction" 1 (P.Cache.stats cache).P.Cache.evictions;
  (* Invalidation is counted separately from eviction; the rewritings
     read MIT's stored relation (the only one holding data). *)
  let stored = P.Peer.stored_pred mit "subject" in
  ignore (P.Cache.invalidate cache (P.Updategram.make ~rel:stored ()));
  let s2 = P.Cache.stats cache in
  check_b "invalidated counted" true (s2.P.Cache.invalidated > 0);
  check_i "evictions unchanged by invalidate" 1 s2.P.Cache.evictions;
  (* stats agrees with the legacy accessors. *)
  check_i "hits accessor agrees" (P.Cache.hits cache) s2.P.Cache.hits;
  check_i "misses accessor agrees" (P.Cache.misses cache) s2.P.Cache.misses

(* ------------------------------------------------------------------ *)
(* Placement *)

let test_placement_greedy_improves () =
  let net = P.Network.create () in
  P.Network.connect net "a" "b" ~latency_ms:50.0;
  P.Network.connect net "b" "c" ~latency_ms:50.0;
  let workloads =
    [ {
        P.Placement.view_name = "calendar";
        query_freq = [ ("a", 10.0); ("c", 10.0) ];
        update_rate = 0.1;
        result_size = 1024;
      } ]
  in
  let initial = [ ("calendar", [ "b" ]) ] in
  let before = P.Placement.cost net workloads initial in
  let placed = P.Placement.greedy net workloads ~initial ~max_replicas:3 in
  let after = P.Placement.cost net workloads placed in
  check_b "cost not worse" true (after <= before);
  check_b "replicated" true
    (List.length (List.assoc "calendar" placed) >= 2)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "pdms"
    [ ("reformulation",
       [ Alcotest.test_case "two-peer equality" `Quick test_two_peer_equality;
         Alcotest.test_case "inclusion directionality" `Quick
           test_two_peer_inclusion_directionality;
         Alcotest.test_case "definitional mapping" `Quick test_definitional_mapping;
         Alcotest.test_case "chain transitive closure" `Quick test_chain_transitive_closure;
         Alcotest.test_case "linear mapping count" `Quick test_chain_mapping_count_linear;
         Alcotest.test_case "reachability" `Quick test_reachability;
         Alcotest.test_case "same mapping twice" `Quick test_same_mapping_twice_in_one_query;
         Alcotest.test_case "local + remote" `Quick test_local_plus_remote_union;
         Alcotest.test_case "join through mappings" `Quick test_join_query_through_mapping;
         Alcotest.test_case "mesh completeness" `Quick test_mesh_completeness;
         Alcotest.test_case "no-pruning agrees" `Quick test_no_pruning_terminates_and_agrees;
         Alcotest.test_case "projection mapping" `Quick test_projection_mapping;
         Alcotest.test_case "storage description selection" `Quick
           test_storage_description_selection ]);
      ("topology",
       [ Alcotest.test_case "shapes" `Quick test_topology_shapes ]);
      ("network",
       [ Alcotest.test_case "routing" `Quick test_network_routing;
         Alcotest.test_case "edge dedupe" `Quick test_network_edge_dedupe;
         Alcotest.test_case "faults" `Quick test_network_faults;
         Alcotest.test_case "retry under flakiness" `Quick
           test_network_retry_flaky;
         Alcotest.test_case "of_topology" `Quick test_network_of_topology ]);
      ("updategram",
       [ Alcotest.test_case "of_log" `Quick test_updategram_of_log;
         Alcotest.test_case "compose" `Quick test_updategram_compose ]
       @ qc [ prop_updategram_log_replay ]);
      ("view-maintenance",
       [ Alcotest.test_case "basic" `Quick test_view_maintenance_basic ]
       @ qc [ prop_view_maintenance_matches_recompute ]);
      ("keyword",
       [ Alcotest.test_case "cross-peer search" `Quick test_keyword_search;
         Alcotest.test_case "skips down peers" `Quick
           test_keyword_skips_down_peer;
         Alcotest.test_case "incremental reindex" `Quick
           test_kwindex_incremental;
         Alcotest.test_case "lru eviction" `Quick test_kwindex_lru_eviction;
         Alcotest.test_case "truncation falls back to rebuild" `Quick
           test_kwindex_truncation_fallback ]
       @ qc
           [ prop_indexed_matches_brute;
             prop_kwindex_incremental_matches_rebuild ]);
      ("distributed",
       [ Alcotest.test_case "owner parsing" `Quick test_distributed_owner_parsing;
         Alcotest.test_case "beats central" `Quick test_distributed_beats_central;
         Alcotest.test_case "matches answer" `Quick test_distributed_answers_match_answer;
         Alcotest.test_case "counts executed messages only" `Quick
           test_distributed_messages_count_executed_only;
         Alcotest.test_case "partitioned six universities" `Quick
           test_distributed_partitioned_six_universities ]
       @ qc
           [ prop_distributed_no_faults_matches_answer;
             prop_batch_matches_nobatch ]);
      ("cache",
       [ Alcotest.test_case "hit and invalidate" `Quick test_cache_hit_and_invalidate;
         Alcotest.test_case "freshness" `Quick test_cache_reflects_updates_after_invalidation;
         Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
         Alcotest.test_case "lru touch protects" `Quick
           test_cache_lru_touch_protects;
         Alcotest.test_case "invalidate exact" `Quick
           test_cache_invalidate_exact;
         Alcotest.test_case "delta probe keeps unaffected entries" `Quick
           test_cache_delta_probe ]
       @ qc [ prop_cache_lru_reference_model ]);
      ("datalog-reference",
       [ Alcotest.test_case "inclusion chain agreement" `Quick
           test_datalog_reference_agreement ]);
      ("pdms_file",
       [ Alcotest.test_case "parse and answer" `Quick test_pdms_file_parse_and_answer;
         Alcotest.test_case "roundtrip" `Quick test_pdms_file_roundtrip;
         Alcotest.test_case "tricky rows" `Quick test_pdms_file_tricky_rows;
         Alcotest.test_case "errors" `Quick test_pdms_file_errors ]
       @ qc [ prop_pdms_file_roundtrip; prop_pdms_value_roundtrip ]);
      ("persist",
       [ Alcotest.test_case "init, apply, reopen" `Quick
           test_persist_init_apply_reopen;
         Alcotest.test_case "fsck detects damage" `Quick
           test_persist_fsck_detects_damage;
         Alcotest.test_case "kill-point sweep" `Quick
           test_persist_kill_point_sweep ]
       @ qc [ prop_persist_crash_recovery ]);
      ("propagate",
       [ Alcotest.test_case "remote replica" `Quick test_propagate_to_remote_replica;
         Alcotest.test_case "multiple replicas" `Quick
           test_propagate_multiple_replicas_consistent;
         Alcotest.test_case "lag and reconcile" `Quick
           test_propagate_lag_and_reconcile ]);
      ("placement",
       [ Alcotest.test_case "greedy improves" `Quick test_placement_greedy_improves ]);
      ("parallel",
       [ Alcotest.test_case "delearning jobs=4 = jobs=1" `Quick
           test_parallel_answer_delearning;
         Alcotest.test_case "keyword ranking jobs=4 = jobs=1" `Quick
           test_parallel_keyword_ranking ]
       @ qc
           [ prop_parallel_answer_matches_sequential;
             prop_parallel_reformulation_matches_sequential ]);
      ("observability",
       [ Alcotest.test_case "answer span tree" `Quick test_answer_span_tree;
         Alcotest.test_case "cache stats accessor" `Quick
           test_cache_stats_accessor ]
       @ qc [ prop_trace_changes_no_answers ]) ]
