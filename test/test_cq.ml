(* Tests for conjunctive queries: evaluation, containment, minimization,
   unfolding and datalog. *)

open Cq

let v = Term.v
let s = Term.str
let atom = Atom.make
let q head body = Query.make head body
let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)

let insert rel row = Relalg.Relation.apply rel (Relalg.Relation.Delta.add row)

let insert_distinct rel row =
  if Relalg.Relation.mem rel row then false
  else begin
    insert rel row;
    true
  end

(* A small university edb:
   course(id, title, dept)    teaches(prof, id)    office(prof, room) *)
let edb () =
  let db = Relalg.Database.create () in
  let course = Relalg.Database.create_relation db "course" [ "id"; "title"; "dept" ] in
  let teaches = Relalg.Database.create_relation db "teaches" [ "prof"; "id" ] in
  let office = Relalg.Database.create_relation db "office" [ "prof"; "room" ] in
  let vs x = Relalg.Value.Str x in
  List.iter (insert course)
    [ [| vs "cse444"; vs "databases"; vs "cs" |];
      [| vs "cse446"; vs "ml"; vs "cs" |];
      [| vs "hist101"; vs "ancient history"; vs "history" |] ];
  List.iter (insert teaches)
    [ [| vs "alon"; vs "cse444" |];
      [| vs "oren"; vs "cse446" |];
      [| vs "mary"; vs "hist101" |] ];
  List.iter (insert office)
    [ [| vs "alon"; vs "ac101" |]; [| vs "oren"; vs "ac202" |] ];
  db

(* ------------------------------------------------------------------ *)
(* Eval *)

let test_eval_join () =
  let db = edb () in
  (* Who teaches a cs course, and where is their office? *)
  let query =
    q (atom "ans" [ v "P"; v "R" ])
      [ atom "course" [ v "C"; v "T"; s "cs" ];
        atom "teaches" [ v "P"; v "C" ];
        atom "office" [ v "P"; v "R" ] ]
  in
  let result = Eval.run db query in
  check_i "two cs profs with offices" 2 (Relalg.Relation.cardinality result)

let test_eval_constant_filter () =
  let db = edb () in
  let query =
    q (atom "ans" [ v "T" ]) [ atom "course" [ s "cse444"; v "T"; v "D" ] ]
  in
  let result = Eval.run db query in
  check_i "one title" 1 (Relalg.Relation.cardinality result)

let test_eval_repeated_var () =
  let db = Relalg.Database.create () in
  let r = Relalg.Database.create_relation db "r" [ "a"; "b" ] in
  insert r [| Relalg.Value.Int 1; Relalg.Value.Int 1 |];
  insert r [| Relalg.Value.Int 1; Relalg.Value.Int 2 |];
  let query = q (atom "ans" [ v "X" ]) [ atom "r" [ v "X"; v "X" ] ] in
  check_i "diagonal only" 1 (Relalg.Relation.cardinality (Eval.run db query))

let test_eval_missing_relation () =
  let db = edb () in
  let query = q (atom "ans" [ v "X" ]) [ atom "nosuch" [ v "X" ] ] in
  check_i "missing relation is empty" 0 (Relalg.Relation.cardinality (Eval.run db query))

let test_eval_unsafe_raises () =
  let db = edb () in
  let query = q (atom "ans" [ v "Z" ]) [ atom "office" [ v "P"; v "R" ] ] in
  check_b "raises" true
    (try
       ignore (Eval.run db query);
       false
     with Invalid_argument _ -> true)

let test_eval_cartesian () =
  let db = edb () in
  let query =
    q (atom "ans" [ v "P"; v "C" ])
      [ atom "office" [ v "P"; v "R" ]; atom "course" [ v "C"; v "T"; v "D" ] ]
  in
  check_i "2 x 3 pairs" 6 (Relalg.Relation.cardinality (Eval.run db query))

(* ------------------------------------------------------------------ *)
(* Containment *)

let test_containment_classic () =
  (* q1(x) :- r(x,y), r(y,z)  is contained in  q2(x) :- r(x,y). *)
  let q1 =
    q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ]; atom "r" [ v "Y"; v "Z" ] ]
  in
  let q2 = q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ] ] in
  check_b "q1 in q2" true (Containment.contained_in q1 q2);
  check_b "q2 not in q1" false (Containment.contained_in q2 q1)

let test_containment_constants () =
  let q1 = q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; s "cs" ] ] in
  let q2 = q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ] ] in
  check_b "specific in general" true (Containment.contained_in q1 q2);
  check_b "general not in specific" false (Containment.contained_in q2 q1)

let test_containment_head_mismatch () =
  let q1 = q (atom "q" [ v "X"; v "Y" ]) [ atom "r" [ v "X"; v "Y" ] ] in
  let q2 = q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ] ] in
  check_b "arity mismatch" false (Containment.contained_in q1 q2)

let test_containment_equivalence () =
  (* Same query up to variable renaming and atom order. *)
  let q1 =
    q (atom "q" [ v "A" ]) [ atom "r" [ v "A"; v "B" ]; atom "t" [ v "B" ] ]
  in
  let q2 =
    q (atom "q" [ v "X" ]) [ atom "t" [ v "Y" ]; atom "r" [ v "X"; v "Y" ] ]
  in
  check_b "equivalent" true (Containment.equivalent q1 q2)

let test_containment_union () =
  let q1 = q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; s "a" ] ] in
  let qa = q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; s "b" ] ] in
  let qb = q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ] ] in
  check_b "in union via second" true (Containment.contained_in_union q1 [ qa; qb ]);
  check_b "not in union" false (Containment.contained_in_union qb [ q1; qa ])

(* ------------------------------------------------------------------ *)
(* Minimize *)

let test_minimize_redundant_atom () =
  (* q(x) :- r(x,y), r(x,z) minimizes to a single atom. *)
  let query =
    q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ]; atom "r" [ v "X"; v "Z" ] ]
  in
  let m = Minimize.minimize query in
  check_i "one atom" 1 (Query.size m);
  check_b "still equivalent" true (Containment.equivalent m query)

let test_minimize_keeps_necessary () =
  let query =
    q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ]; atom "t" [ v "Y" ] ]
  in
  check_i "nothing removable" 2 (Query.size (Minimize.minimize query))

let test_minimize_duplicates () =
  let query =
    q (atom "q" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ]; atom "r" [ v "X"; v "Y" ] ]
  in
  check_i "exact duplicate dropped" 1 (Query.size (Minimize.remove_duplicate_atoms query))

(* ------------------------------------------------------------------ *)
(* Unfold *)

let test_unfold_simple () =
  (* cs_course(C) :- course(C, T, 'cs'); query over cs_course unfolds. *)
  let rule =
    q (atom "cs_course" [ v "C" ]) [ atom "course" [ v "C"; v "T"; s "cs" ] ]
  in
  let query = q (atom "ans" [ v "X" ]) [ atom "cs_course" [ v "X" ] ] in
  match Unfold.expand [ rule ] query with
  | [ expanded ] ->
      check_i "one atom" 1 (Query.size expanded);
      let db = edb () in
      check_i "two cs courses" 2 (Relalg.Relation.cardinality (Eval.run db expanded))
  | other -> Alcotest.fail (Printf.sprintf "expected 1 expansion, got %d" (List.length other))

let test_unfold_union () =
  (* Two rules for the same predicate: expansion is a UCQ. *)
  let r1 = q (atom "p" [ v "X" ]) [ atom "r" [ v "X" ] ] in
  let r2 = q (atom "p" [ v "X" ]) [ atom "t" [ v "X" ] ] in
  let query = q (atom "ans" [ v "X" ]) [ atom "p" [ v "X" ] ] in
  check_i "two expansions" 2 (List.length (Unfold.expand [ r1; r2 ] query))

let test_unfold_two_defined_atoms () =
  let r1 = q (atom "p" [ v "X" ]) [ atom "r" [ v "X" ] ] in
  let r2 = q (atom "p" [ v "X" ]) [ atom "t" [ v "X" ] ] in
  let query =
    q (atom "ans" [ v "X"; v "Y" ]) [ atom "p" [ v "X" ]; atom "p" [ v "Y" ] ]
  in
  check_i "cross product of choices" 4 (List.length (Unfold.expand [ r1; r2 ] query))

let test_unfold_depth_cutoff () =
  (* Recursive rule: expansion terminates (and yields nothing since the
     base case is absent). *)
  let rec_rule =
    q (atom "p" [ v "X" ]) [ atom "e" [ v "X"; v "Y" ]; atom "p" [ v "Y" ] ]
  in
  let query = q (atom "ans" [ v "X" ]) [ atom "p" [ v "X" ] ] in
  check_i "no base case, no expansion" 0
    (List.length (Unfold.expand ~max_depth:5 [ rec_rule ] query))

(* ------------------------------------------------------------------ *)
(* Datalog *)

let test_datalog_transitive_closure () =
  let db = Relalg.Database.create () in
  let edge = Relalg.Database.create_relation db "edge" [ "src"; "dst" ] in
  let vi i = Relalg.Value.Int i in
  List.iter (insert edge)
    [ [| vi 1; vi 2 |]; [| vi 2; vi 3 |]; [| vi 3; vi 4 |] ];
  let program =
    [ q (atom "path" [ v "X"; v "Y" ]) [ atom "edge" [ v "X"; v "Y" ] ];
      q (atom "path" [ v "X"; v "Z" ])
        [ atom "edge" [ v "X"; v "Y" ]; atom "path" [ v "Y"; v "Z" ] ] ]
  in
  let result = Datalog.eval db program in
  check_i "paths" 6 (Relalg.Relation.cardinality (Relalg.Database.find result "path"));
  check_i "edb preserved" 3
    (Relalg.Relation.cardinality (Relalg.Database.find result "edge"));
  (* Input database untouched. *)
  check_b "input unmodified" false (Relalg.Database.mem db "path")

let test_datalog_unsafe_rule_rejected () =
  let db = Relalg.Database.create () in
  let bad = q (atom "p" [ v "X" ]) [ atom "r" [ v "Y" ] ] in
  check_b "raises" true
    (try
       ignore (Datalog.eval db [ bad ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Query helpers *)

let test_query_helpers () =
  let query =
    q (atom "ans" [ v "X" ])
      [ atom "r" [ v "X"; v "Y" ]; atom "t" [ v "Y" ]; atom "r" [ v "X"; s "k" ] ]
  in
  check_b "vars order" true (Query.vars query = [ "X"; "Y" ]);
  check_b "existential" true (Query.existential_vars query = [ "Y" ]);
  check_b "body preds dedupe" true (Query.body_preds query = [ "r"; "t" ]);
  let fresh = Query.freshen ~suffix:"_1" query in
  check_b "freshen renames" true (Query.vars fresh = [ "X_1"; "Y_1" ]);
  check_b "freshen keeps consts" true
    (List.exists
       (fun (a : Atom.t) -> List.exists (Term.equal (s "k")) a.Atom.args)
       fresh.Query.body);
  let renamed = Query.rename_preds (fun p -> "x_" ^ p) query in
  check_b "preds renamed" true (Query.body_preds renamed = [ "x_r"; "x_t" ]);
  check_b "to_string" true
    (String.length (Query.to_string query) > 10)

let test_unsafe_query_detected () =
  let unsafe = q (atom "ans" [ v "Z" ]) [ atom "r" [ v "X"; v "Y" ] ] in
  check_b "unsafe" false (Query.is_safe unsafe)

(* ------------------------------------------------------------------ *)
(* Relax: graceful degradation *)

let test_relax_exact_hit_needs_no_steps () =
  let db = edb () in
  let query = q (atom "ans" [ v "T" ]) [ atom "course" [ v "C"; v "T"; s "cs" ] ] in
  match Relax.graceful db query with
  | Some r ->
      check_i "no steps" 0 (List.length r.Relax.steps);
      check_i "two cs courses" 2 (Relalg.Relation.cardinality r.Relax.answers)
  | None -> Alcotest.fail "expected answers"

let test_relax_generalises_wrong_constant () =
  let db = edb () in
  (* The user guesses a department name that does not exist. *)
  let query =
    q (atom "ans" [ v "T" ]) [ atom "course" [ v "C"; v "T"; s "informatics" ] ]
  in
  match Relax.graceful db query with
  | Some r ->
      check_i "one step" 1 (List.length r.Relax.steps);
      (match r.Relax.steps with
      | [ Relax.Generalised_constant ("course", value) ] ->
          check_b "the bad constant" true
            (Relalg.Value.equal value (Relalg.Value.Str "informatics"))
      | _ -> Alcotest.fail "expected a constant generalisation");
      check_i "all titles" 3 (Relalg.Relation.cardinality r.Relax.answers)
  | None -> Alcotest.fail "expected relaxed answers"

let test_relax_drops_impossible_atom () =
  let db = edb () in
  (* No awards exist at all; with no constants to generalise, the only
     productive relaxation drops the award atom. *)
  ignore (Relalg.Database.create_relation db "award" [ "prof" ]);
  let query =
    q (atom "ans" [ v "P" ])
      [ atom "teaches" [ v "P"; v "C" ]; atom "award" [ v "P" ] ]
  in
  match Relax.graceful db query with
  | Some r ->
      check_b "dropped the award atom" true
        (List.exists
           (function Relax.Dropped_atom a -> a.Atom.pred = "award" | _ -> false)
           r.Relax.steps);
      check_i "all teachers found" 3 (Relalg.Relation.cardinality r.Relax.answers)
  | None -> Alcotest.fail "expected relaxed answers"

let test_relax_gives_up () =
  let db = edb () in
  let query = q (atom "ans" [ v "X" ]) [ atom "nosuch" [ v "X" ] ] in
  check_b "nothing to relax to" true (Relax.graceful db query = None)

let test_relax_single_steps_enumerated () =
  let query =
    q (atom "ans" [ v "T" ])
      [ atom "course" [ v "C"; v "T"; s "cs" ]; atom "teaches" [ v "P"; v "C" ] ]
  in
  (* One constant to generalise + one droppable atom (dropping the course
     atom would unbind the head variable T, so only 'teaches' drops). *)
  check_i "relaxation count" 2 (List.length (Relax.relaxations query))

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parser_basic () =
  let query = Parser.parse_query_exn "q(X, Y) :- r(X, Z), s(Z, Y)" in
  check_i "two atoms" 2 (Query.size query);
  check_b "head vars" true (Query.head_vars query = [ "X"; "Y" ]);
  check_b "safe" true (Query.is_safe query)

let test_parser_constants () =
  let query = Parser.parse_query_exn "q(X) :- course(X, 'intro to db', cs, 42)" in
  match query.Query.body with
  | [ a ] ->
      check_b "quoted string" true
        (List.nth a.Atom.args 1 = Term.str "intro to db");
      check_b "bare lowercase is string" true
        (List.nth a.Atom.args 2 = Term.str "cs");
      check_b "number" true (List.nth a.Atom.args 3 = Term.int 42)
  | _ -> Alcotest.fail "expected one atom"

let test_parser_qualified_preds () =
  let query = Parser.parse_query_exn "ans(T) :- mit.subject!(T, E)" in
  match query.Query.body with
  | [ a ] -> check_b "qualified pred" true (String.equal a.Atom.pred "mit.subject!")
  | _ -> Alcotest.fail "expected one atom"

let test_parser_errors () =
  check_b "missing body" true (Result.is_error (Parser.parse_query "q(X)"));
  check_b "unterminated quote" true
    (Result.is_error (Parser.parse_query "q(X) :- r('oops)"));
  check_b "trailing garbage" true
    (Result.is_error (Parser.parse_query "q(X) :- r(X) extra"));
  check_b "empty" true (Result.is_error (Parser.parse_query ""))

let test_parser_program () =
  let text = "# a comment\npath(X, Y) :- edge(X, Y)\n\npath(X, Z) :- edge(X, Y), path(Y, Z)" in
  match Parser.parse_program text with
  | Ok rules -> check_i "two rules" 2 (List.length rules)
  | Error msg -> Alcotest.fail msg

let test_parser_roundtrip () =
  List.iter
    (fun text ->
      let query = Parser.parse_query_exn text in
      let reparsed = Parser.parse_query_exn (Query.to_string query) in
      check_b text true (Query.equal query reparsed))
    [ "q(X) :- r(X, Y)";
      "ans(A, B) :- course(A, 'db', B), teaches(B, A)";
      "p(X) :- a.b(X), c.d(X, X)" ]

(* ------------------------------------------------------------------ *)
(* Properties *)

(* Random CQ over predicates r/2, t/1 with vars from a small pool. *)
let gen_term =
  QCheck.Gen.(
    frequency
      [ (4, map (fun i -> Term.v (Printf.sprintf "V%d" i)) (int_bound 3));
        (1, map (fun i -> Term.int i) (int_bound 2)) ])

let gen_atom =
  QCheck.Gen.(
    frequency
      [ (2, map2 (fun a b -> atom "r" [ a; b ]) gen_term gen_term);
        (1, map (fun a -> atom "t" [ a ]) gen_term) ])

let gen_query =
  QCheck.Gen.(
    list_size (int_range 1 3) gen_atom >>= fun body ->
    (* Head: first variable occurring in the body, or boolean head. *)
    let vars = List.concat_map Atom.vars body in
    let head_args = match vars with [] -> [] | x :: _ -> [ Term.v x ] in
    return (q (atom "ans" head_args) body))

let arb_query = QCheck.make ~print:Query.to_string gen_query

let gen_db =
  QCheck.Gen.(
    pair
      (small_list (pair (int_bound 3) (int_bound 3)))
      (small_list (int_bound 3))
    >>= fun (rs, ts) ->
    return
      (let db = Relalg.Database.create () in
       let r = Relalg.Database.create_relation db "r" [ "a"; "b" ] in
       let t = Relalg.Database.create_relation db "t" [ "a" ] in
       List.iter
         (fun (a, b) ->
           ignore
             (insert_distinct r [| Relalg.Value.Int a; Relalg.Value.Int b |]))
         rs;
       List.iter
         (fun a ->
           ignore (insert_distinct t [| Relalg.Value.Int a |]))
         ts;
       db))

let arb_db = QCheck.make ~print:(fun _ -> "<db>") gen_db

let answers db query =
  Relalg.Relation.tuples (Eval.run db query)
  |> List.map (fun row -> Array.to_list (Array.map Relalg.Value.to_string row))
  |> List.sort compare

let prop_containment_sound =
  QCheck.Test.make ~name:"containment implies answer inclusion" ~count:500
    QCheck.(triple arb_db arb_query arb_query)
    (fun (db, q1, q2) ->
      QCheck.assume
        (Atom.arity q1.Query.head = Atom.arity q2.Query.head
        && Query.is_safe q1 && Query.is_safe q2);
      if Containment.contained_in q1 q2 then
        let a1 = answers db q1 and a2 = answers db q2 in
        List.for_all (fun x -> List.mem x a2) a1
      else true)

let prop_minimize_preserves_answers =
  QCheck.Test.make ~name:"minimize preserves answers" ~count:300
    QCheck.(pair arb_db arb_query)
    (fun (db, query) ->
      QCheck.assume (Query.is_safe query);
      answers db query = answers db (Minimize.minimize query))

let prop_self_containment =
  QCheck.Test.make ~name:"every query contains itself" ~count:200 arb_query
    (fun query -> Containment.contained_in query query)

(* Reference containment with no prefilter — the seed's implementation:
   freeze q1's head, seed the substitution head-onto-head, search for a
   homomorphism of q2's body into q1's frozen body. *)
let reference_contained_in (q1 : Query.t) (q2 : Query.t) =
  let frozen_head = Homomorphism.freeze_atom q1.Query.head in
  match Subst.match_atom Subst.empty q2.Query.head frozen_head with
  | None -> false
  | Some init -> Homomorphism.exists ~init ~from:q2.Query.body q1.Query.body

let prop_signature_prefilter_exact =
  QCheck.Test.make
    ~name:"signature prefilter never changes containment verdicts" ~count:1000
    QCheck.(pair arb_query arb_query)
    (fun (q1, q2) ->
      let reference = reference_contained_in q1 q2 in
      let sub = Signature.of_query q1 and super = Signature.of_query q2 in
      Containment.contained_in q1 q2 = reference
      && Containment.contained_in_with ~sub ~super q1 q2 = reference)

let prop_signature_necessary =
  QCheck.Test.make ~name:"containment implies signature compatibility"
    ~count:1000
    QCheck.(pair arb_query arb_query)
    (fun (q1, q2) ->
      (not (reference_contained_in q1 q2))
      || Signature.compatible ~sub:(Signature.of_query q1)
           ~super:(Signature.of_query q2))

let test_signature_basics () =
  let q1 = q (atom "ans" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ] ] in
  let q2 =
    q (atom "ans" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ]; atom "t" [ v "Y" ] ]
  in
  let q3 = q (atom "ans" [ v "X"; v "Y" ]) [ atom "r" [ v "X"; v "Y" ] ] in
  let s1 = Signature.of_query q1
  and s2 = Signature.of_query q2
  and s3 = Signature.of_query q3 in
  (* Reflexive. *)
  check_b "self" true (Signature.compatible ~sub:s1 ~super:s1);
  (* q2's body covers q1's predicate names, so q2 ⊑ q1 is possible... *)
  check_b "sub has extra pred" true (Signature.compatible ~sub:s2 ~super:s1);
  (* ...but q1 ⊑ q2 is impossible: q1 has no [t] atom to map onto. *)
  check_b "super has extra pred" false (Signature.compatible ~sub:s1 ~super:s2);
  (* Head arity mismatch is always incompatible. *)
  check_b "arity mismatch" false (Signature.compatible ~sub:s1 ~super:s3);
  check_b "equal self" true (Signature.equal s1 (Signature.of_query q1));
  check_b "distinct keys" false
    (String.equal (Signature.key s1) (Signature.key s2))

(* ------------------------------------------------------------------ *)
(* Plan: shared-prefix batch evaluation *)

let rel_rows rel =
  Relalg.Relation.tuples rel
  |> List.map (fun row -> Array.to_list (Array.map Relalg.Value.to_string row))
  |> List.sort compare

let test_plan_trie_shape () =
  let db = Relalg.Database.create () in
  let r = Relalg.Database.create_relation db "r" [ "a"; "b" ] in
  let t = Relalg.Database.create_relation db "t" [ "a" ] in
  List.iter
    (fun (a, b) ->
      insert r [| Relalg.Value.Int a; Relalg.Value.Int b |])
    [ (1, 2); (2, 1) ];
  List.iter
    (fun a -> insert t [| Relalg.Value.Int a |])
    [ 0; 1; 2; 3; 4 ];
  (* r is smaller than t, so both bodies start with their r atom; the
     alpha-normalised first atoms coincide and share one trie node. *)
  let q1 =
    q (atom "ans" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ]; atom "t" [ v "Y" ] ]
  in
  let q2 =
    q (atom "ans" [ v "A" ]) [ atom "r" [ v "A"; v "B" ]; atom "r" [ v "B"; v "A" ] ]
  in
  let plan = Plan.build db [ q1; q2 ] in
  let s = Plan.stats plan in
  check_i "queries" 2 s.Plan.queries;
  check_i "nodes" 3 s.Plan.nodes;
  check_i "shared prefix atoms" 1 s.Plan.shared_prefix_atoms;
  check_i "no duplicates" 0 s.Plan.duplicate_queries;
  check_i "max depth" 2 s.Plan.max_depth;
  (* The walk emits exactly what per-rewriting evaluation does. *)
  let out_b = Relalg.Relation.create (Eval.head_schema q1) in
  let counts_b = Plan.run_union_into out_b db plan in
  let out_s = Relalg.Relation.create (Eval.head_schema q1) in
  let counts_s =
    List.map (fun qq -> Eval.run_union_into out_s db [ qq ]) [ q1; q2 ]
  in
  check_b "same answers" true (rel_rows out_b = rel_rows out_s);
  check_b "same per-query counts" true (counts_b = counts_s);
  (* Fully identical queries collapse onto one emit point. *)
  let dup = Plan.build db [ q1; q1 ] in
  let sd = Plan.stats dup in
  check_i "dup nodes" 2 sd.Plan.nodes;
  check_i "dup shared" 2 sd.Plan.shared_prefix_atoms;
  check_i "dup duplicates" 1 sd.Plan.duplicate_queries

let test_plan_bindings_reused_counter () =
  let db = Relalg.Database.create () in
  let r = Relalg.Database.create_relation db "r" [ "a"; "b" ] in
  let t = Relalg.Database.create_relation db "t" [ "a" ] in
  List.iter
    (fun (a, b) ->
      insert r [| Relalg.Value.Int a; Relalg.Value.Int b |])
    [ (1, 2); (2, 1) ];
  (* t larger than r, so the shared r atom stays first in both orders. *)
  List.iter
    (fun a -> insert t [| Relalg.Value.Int a |])
    [ 0; 1; 2; 3; 4 ];
  let q1 =
    q (atom "ans" [ v "X" ]) [ atom "r" [ v "X"; v "Y" ]; atom "t" [ v "Y" ] ]
  in
  let q2 =
    q (atom "ans" [ v "A" ]) [ atom "r" [ v "A"; v "B" ]; atom "r" [ v "B"; v "A" ] ]
  in
  let plan = Plan.build db [ q1; q2 ] in
  let before =
    Obs.Metrics.counter_value (Obs.Metrics.snapshot ()) "cq.plan.bindings_reused"
  in
  let out = Relalg.Relation.create (Eval.head_schema q1) in
  ignore (Plan.run_union_into out db plan : int list);
  let after =
    Obs.Metrics.counter_value (Obs.Metrics.snapshot ()) "cq.plan.bindings_reused"
  in
  (* The shared r node has 2 extensions serving 2 queries: 2 reused. *)
  check_i "bindings reused" 2 (after - before)

let test_arity_mismatch_counter () =
  let db = Relalg.Database.create () in
  ignore (Relalg.Database.create_relation db "r" [ "a"; "b" ]);
  let bad = q (atom "ans" []) [ atom "r" [ v "X" ] ] in
  let before =
    Obs.Metrics.counter_value (Obs.Metrics.snapshot ()) "cq.eval.arity_mismatch"
  in
  check_i "no answers" 0 (Relalg.Relation.cardinality (Eval.run db bad));
  let after =
    Obs.Metrics.counter_value (Obs.Metrics.snapshot ()) "cq.eval.arity_mismatch"
  in
  check_b "counter bumped" true (after > before)

(* Batch ≡ baseline on random unions: same union tuples, same
   per-query pre-dedup counts, same per-query answer relations, for
   sequential and sharded walks. *)
let prop_plan_matches_per_rewriting =
  QCheck.Test.make ~name:"trie batch = per-rewriting union (any jobs)"
    ~count:300
    QCheck.(pair arb_db (list_of_size Gen.(int_range 2 6) arb_query))
    (fun (db, qs) ->
      QCheck.assume (List.for_all Query.is_safe qs);
      let q0 = List.hd qs in
      let a0 = Atom.arity q0.Query.head in
      QCheck.assume
        (List.for_all (fun qq -> Atom.arity qq.Query.head = a0) qs);
      let base = Relalg.Relation.create (Eval.head_schema q0) in
      let base_counts =
        List.map (fun qq -> Eval.run_union_into base db [ qq ]) qs
      in
      let base_each = List.map (fun qq -> rel_rows (Eval.run db qq)) qs in
      let check_jobs jobs =
        if jobs > 1 then Relalg.Database.freeze db;
        let plan = Plan.build db qs in
        let out = Relalg.Relation.create (Eval.head_schema q0) in
        let counts = Plan.run_union_into ~jobs out db plan in
        rel_rows out = rel_rows base
        && counts = base_counts
        && List.map rel_rows (Plan.run_each ~jobs db plan) = base_each
      in
      check_jobs 1 && check_jobs 3)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "cq"
    [ ("eval",
       [ Alcotest.test_case "join" `Quick test_eval_join;
         Alcotest.test_case "constant filter" `Quick test_eval_constant_filter;
         Alcotest.test_case "repeated var" `Quick test_eval_repeated_var;
         Alcotest.test_case "missing relation" `Quick test_eval_missing_relation;
         Alcotest.test_case "unsafe raises" `Quick test_eval_unsafe_raises;
         Alcotest.test_case "cartesian" `Quick test_eval_cartesian ]);
      ("containment",
       [ Alcotest.test_case "classic" `Quick test_containment_classic;
         Alcotest.test_case "constants" `Quick test_containment_constants;
         Alcotest.test_case "head mismatch" `Quick test_containment_head_mismatch;
         Alcotest.test_case "equivalence" `Quick test_containment_equivalence;
         Alcotest.test_case "union" `Quick test_containment_union ]);
      ("minimize",
       [ Alcotest.test_case "redundant atom" `Quick test_minimize_redundant_atom;
         Alcotest.test_case "keeps necessary" `Quick test_minimize_keeps_necessary;
         Alcotest.test_case "duplicates" `Quick test_minimize_duplicates ]);
      ("unfold",
       [ Alcotest.test_case "simple" `Quick test_unfold_simple;
         Alcotest.test_case "union" `Quick test_unfold_union;
         Alcotest.test_case "two defined atoms" `Quick test_unfold_two_defined_atoms;
         Alcotest.test_case "depth cutoff" `Quick test_unfold_depth_cutoff ]);
      ("query-helpers",
       [ Alcotest.test_case "helpers" `Quick test_query_helpers;
         Alcotest.test_case "unsafe detected" `Quick test_unsafe_query_detected ]);
      ("relax",
       [ Alcotest.test_case "exact hit" `Quick test_relax_exact_hit_needs_no_steps;
         Alcotest.test_case "generalises constant" `Quick
           test_relax_generalises_wrong_constant;
         Alcotest.test_case "drops atom" `Quick test_relax_drops_impossible_atom;
         Alcotest.test_case "gives up" `Quick test_relax_gives_up;
         Alcotest.test_case "single steps" `Quick test_relax_single_steps_enumerated ]);
      ("parser",
       [ Alcotest.test_case "basic" `Quick test_parser_basic;
         Alcotest.test_case "constants" `Quick test_parser_constants;
         Alcotest.test_case "qualified preds" `Quick test_parser_qualified_preds;
         Alcotest.test_case "errors" `Quick test_parser_errors;
         Alcotest.test_case "program" `Quick test_parser_program;
         Alcotest.test_case "roundtrip" `Quick test_parser_roundtrip ]);
      ("datalog",
       [ Alcotest.test_case "transitive closure" `Quick test_datalog_transitive_closure;
         Alcotest.test_case "unsafe rejected" `Quick test_datalog_unsafe_rule_rejected ]);
      ("signature",
       [ Alcotest.test_case "basics" `Quick test_signature_basics ]);
      ("plan",
       [ Alcotest.test_case "trie shape" `Quick test_plan_trie_shape;
         Alcotest.test_case "bindings reused counter" `Quick
           test_plan_bindings_reused_counter;
         Alcotest.test_case "arity mismatch counter" `Quick
           test_arity_mismatch_counter ]
       @ qc [ prop_plan_matches_per_rewriting ]);
      ("properties",
       qc
         [ prop_containment_sound; prop_minimize_preserves_answers;
           prop_self_containment; prop_signature_prefilter_exact;
           prop_signature_necessary ]) ]
