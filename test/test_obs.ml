(* Unit + property tests for the lib/obs observability subsystem:
   span nesting/ordering determinism, sinks, metrics snapshots. *)

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

(* A fake clock makes durations deterministic: every call advances time
   by 1ms, so each span's duration is exactly (calls made inside it + 1)
   milliseconds. *)
let install_fake_clock () =
  let t = ref 0.0 in
  Obs.Trace.set_clock (fun () ->
      t := !t +. 0.001;
      !t)

let restore_clock () = Obs.Trace.set_clock Unix.gettimeofday

let with_fake_clock f =
  install_fake_clock ();
  Fun.protect ~finally:restore_clock f

(* ------------------------------------------------------------------ *)
(* Span trees *)

let collect_tree f =
  let sink = Obs.Sink.memory () in
  let tr = Obs.Trace.create sink in
  f tr;
  Obs.Sink.spans sink

let test_span_nesting () =
  with_fake_clock @@ fun () ->
  let roots =
    collect_tree (fun tr ->
        Obs.Trace.span tr "answer" (fun () ->
            Obs.Trace.span tr "reformulate" (fun () ->
                Obs.Trace.span tr "sweep" (fun () -> ()));
            Obs.Trace.span tr "eval" (fun () -> ())))
  in
  check_i "one root" 1 (List.length roots);
  let root = List.hd roots in
  check_s "root name" "answer" root.Obs.Span.name;
  Alcotest.(check (list string))
    "preorder names"
    [ "answer"; "reformulate"; "sweep"; "eval" ]
    (Obs.Span.names root);
  (* Children are in start order, not completion order. *)
  check_b "reformulate before eval" true
    (match root.Obs.Span.children with
    | [ a; b ] -> a.Obs.Span.name = "reformulate" && b.Obs.Span.name = "eval"
    | _ -> false);
  check_b "find nested" true
    (match Obs.Span.find root "sweep" with Some _ -> true | None -> false);
  check_b "find missing" true (Obs.Span.find root "nope" = None)

let test_span_determinism () =
  (* Two runs of the same code produce structurally identical trees:
     same names, same attrs, same shape (only timings may vary — and
     under the fake clock even those agree). *)
  let run () =
    with_fake_clock @@ fun () ->
    collect_tree (fun tr ->
        Obs.Trace.span tr "a" (fun () ->
            Obs.Trace.attr_i tr "n" 1;
            Obs.Trace.span tr "b" (fun () -> Obs.Trace.attr_s tr "k" "v");
            Obs.Trace.span tr "c" (fun () -> ());
            Obs.Trace.attr_b tr "done" true))
  in
  let render roots = String.concat "" (List.map Obs.Span.render roots) in
  check_s "identical rendering across runs" (render (run ())) (render (run ()))

let test_span_attrs_order () =
  with_fake_clock @@ fun () ->
  let roots =
    collect_tree (fun tr ->
        Obs.Trace.span tr "s" (fun () ->
            Obs.Trace.attr_i tr "first" 1;
            Obs.Trace.attr_f tr "second" 2.5;
            Obs.Trace.attr_s tr "third" "x"))
  in
  let root = List.hd roots in
  Alcotest.(check (list string))
    "attrs keep attachment order"
    [ "first"; "second"; "third" ]
    (List.map fst root.Obs.Span.attrs)

let test_span_exception_safety () =
  with_fake_clock @@ fun () ->
  let sink = Obs.Sink.memory () in
  let tr = Obs.Trace.create sink in
  (try
     Obs.Trace.span tr "outer" (fun () ->
         Obs.Trace.span tr "inner" (fun () -> failwith "boom"))
   with Failure _ -> ());
  match Obs.Sink.spans sink with
  | [ root ] ->
      check_s "root still emitted" "outer" root.Obs.Span.name;
      let inner = Option.get (Obs.Span.find root "inner") in
      check_b "exn recorded on failing span" true
        (List.mem_assoc "exn" inner.Obs.Span.attrs);
      (* The tracer is reusable after the exception. *)
      Obs.Trace.span tr "again" (fun () -> ());
      check_i "stack recovered" 2 (List.length (Obs.Sink.spans sink))
  | spans -> Alcotest.failf "expected 1 root, got %d" (List.length spans)

let test_null_tracer () =
  let calls = ref 0 in
  let result =
    Obs.Trace.span Obs.Trace.null "ignored" (fun () ->
        incr calls;
        Obs.Trace.attr_i Obs.Trace.null "k" 1;
        42)
  in
  check_i "body ran once" 1 !calls;
  check_i "value passes through" 42 result;
  check_b "null tracer disabled" true (not (Obs.Trace.enabled Obs.Trace.null));
  check_b "create over null sink is disabled" true
    (not (Obs.Trace.enabled (Obs.Trace.create Obs.Sink.null)))

let test_render_and_json () =
  with_fake_clock @@ fun () ->
  let roots =
    collect_tree (fun tr ->
        Obs.Trace.span tr "root" (fun () ->
            Obs.Trace.attr_i tr "n" 3;
            Obs.Trace.span tr "kid" (fun () ->
                Obs.Trace.attr_s tr "quote" "a\"b")))
  in
  let root = List.hd roots in
  let text = Obs.Span.render root in
  check_b "text mentions both spans" true
    (let has s sub =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
       in
       go 0
     in
     has text "root" && has text "kid" && has text "n=3");
  let json = Obs.Span.to_json root in
  check_b "json escapes quotes" true
    (let has s sub =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
       in
       go 0
     in
     has json "\"name\":\"root\"" && has json "a\\\"b")

(* ------------------------------------------------------------------ *)
(* Sinks *)

let test_memory_sink_order () =
  with_fake_clock @@ fun () ->
  let sink = Obs.Sink.memory () in
  let tr = Obs.Trace.create sink in
  Obs.Trace.span tr "one" (fun () -> ());
  Obs.Trace.span tr "two" (fun () -> ());
  Obs.Trace.span tr "three" (fun () -> ());
  Alcotest.(check (list string))
    "roots oldest first" [ "one"; "two"; "three" ]
    (List.map (fun (s : Obs.Span.t) -> s.Obs.Span.name) (Obs.Sink.spans sink));
  Obs.Sink.clear sink;
  check_i "clear empties" 0 (List.length (Obs.Sink.spans sink));
  (* Independent buffers. *)
  let other = Obs.Sink.memory () in
  Obs.Trace.span (Obs.Trace.create other) "x" (fun () -> ());
  check_i "fresh sink independent" 1 (List.length (Obs.Sink.spans other));
  check_i "first sink untouched" 0 (List.length (Obs.Sink.spans sink))

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_counter_snapshot () =
  let c = Obs.Metrics.counter "test.obs.counter_a" in
  let c2 = Obs.Metrics.counter "test.obs.counter_b" in
  Obs.Metrics.reset ();
  Obs.Metrics.incr c;
  Obs.Metrics.incr c;
  Obs.Metrics.add c2 40;
  Obs.Metrics.add c 3;
  let snap = Obs.Metrics.snapshot () in
  check_i "counter_a" 5 (Obs.Metrics.counter_value snap "test.obs.counter_a");
  check_i "counter_b" 40 (Obs.Metrics.counter_value snap "test.obs.counter_b");
  check_i "absent counter reads 0" 0
    (Obs.Metrics.counter_value snap "test.obs.never_registered");
  (* Registration is idempotent: same handle, same counts. *)
  let c' = Obs.Metrics.counter "test.obs.counter_a" in
  Obs.Metrics.incr c';
  let snap2 = Obs.Metrics.snapshot () in
  check_i "same underlying counter" 6
    (Obs.Metrics.counter_value snap2 "test.obs.counter_a");
  (* Reset zeroes values but keeps registrations alive. *)
  Obs.Metrics.reset ();
  let snap3 = Obs.Metrics.snapshot () in
  check_i "reset zeroes" 0 (Obs.Metrics.counter_value snap3 "test.obs.counter_a");
  Obs.Metrics.incr c;
  check_i "handle valid after reset" 1
    (Obs.Metrics.counter_value (Obs.Metrics.snapshot ()) "test.obs.counter_a")

let test_kind_mismatch () =
  ignore (Obs.Metrics.counter "test.obs.kind_clash");
  check_b "same name, different kind raises" true
    (try
       ignore (Obs.Metrics.histogram "test.obs.kind_clash");
       false
     with Invalid_argument _ -> true)

let test_histogram_and_gauge () =
  let h = Obs.Metrics.histogram "test.obs.hist" in
  let g = Obs.Metrics.gauge "test.obs.gauge" in
  Obs.Metrics.reset ();
  Obs.Metrics.observe h 2.0;
  Obs.Metrics.observe h 8.0;
  Obs.Metrics.observe h 5.0;
  Obs.Metrics.set_gauge g 7.5;
  let snap = Obs.Metrics.snapshot () in
  (match Obs.Metrics.find_histogram snap "test.obs.hist" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some s ->
      check_i "count" 3 s.Obs.Metrics.count;
      check_b "sum" true (s.Obs.Metrics.sum = 15.0);
      check_b "min" true (s.Obs.Metrics.min = 2.0);
      check_b "max" true (s.Obs.Metrics.max = 8.0));
  check_b "gauge value" true (List.assoc "test.obs.gauge" snap.Obs.Metrics.gauges = 7.5)

let test_snapshot_sorted_deterministic () =
  ignore (Obs.Metrics.counter "test.obs.zz");
  ignore (Obs.Metrics.counter "test.obs.aa");
  let snap = Obs.Metrics.snapshot () in
  let names = List.map fst snap.Obs.Metrics.counters in
  check_b "counters sorted by name" true
    (names = List.sort String.compare names);
  check_s "render is stable" (Obs.Metrics.render snap)
    (Obs.Metrics.render (Obs.Metrics.snapshot ()))

let test_disabled_switch () =
  let c = Obs.Metrics.counter "test.obs.switch" in
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled true)
    (fun () ->
      Obs.Metrics.incr c;
      Obs.Metrics.add c 10;
      check_i "disabled increments dropped" 0
        (Obs.Metrics.counter_value (Obs.Metrics.snapshot ()) "test.obs.switch"));
  Obs.Metrics.incr c;
  check_i "re-enabled counts again" 1
    (Obs.Metrics.counter_value (Obs.Metrics.snapshot ()) "test.obs.switch")

(* Counter increments are atomic: concurrent domains lose no updates. *)
let test_counter_domain_safety () =
  let c = Obs.Metrics.counter "test.obs.parallel" in
  Obs.Metrics.reset ();
  let per_domain = 10_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.Metrics.incr c
            done))
  in
  List.iter Domain.join domains;
  check_i "no lost updates" (4 * per_domain)
    (Obs.Metrics.counter_value (Obs.Metrics.snapshot ()) "test.obs.parallel")

let () =
  Alcotest.run "obs"
    [
      ( "span",
        [
          Alcotest.test_case "nesting and preorder" `Quick test_span_nesting;
          Alcotest.test_case "deterministic tree" `Quick test_span_determinism;
          Alcotest.test_case "attr order" `Quick test_span_attrs_order;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "null tracer" `Quick test_null_tracer;
          Alcotest.test_case "render and json" `Quick test_render_and_json;
        ] );
      ( "sink",
        [ Alcotest.test_case "memory order/clear" `Quick test_memory_sink_order ] );
      ( "metrics",
        [
          Alcotest.test_case "counter snapshots" `Quick test_counter_snapshot;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "histogram and gauge" `Quick
            test_histogram_and_gauge;
          Alcotest.test_case "sorted snapshot" `Quick
            test_snapshot_sorted_deterministic;
          Alcotest.test_case "global disable switch" `Quick
            test_disabled_switch;
          Alcotest.test_case "domain-safe counters" `Quick
            test_counter_domain_safety;
        ] );
    ]
