(* The `revere` command-line tool: poke at the library from a shell.

     revere demo                          the DElearning walkthrough
     revere match A.schema B.schema       corpus-assisted schema matching
     revere advise PARTIAL.schema S...    DesignAdvisor ranking
     revere critique DRAFT.schema S...    decomposition advice
     revere stats TERM S...               corpus statistics for a term
     revere query 'q(X) :- r(X, Y)'       parse + inspect a CQ
     revere stem WORD...                  Porter-stem words
     revere gen-pdms                      emit the six-university PDMS
     revere answer FILE QUERY             reformulate + evaluate a CQ
     revere search FILE WORD...           TF/IDF keyword search
     revere distributed FILE QUERY --at P peer-based execution plan

   The last three share the execution-context flags: -j/--jobs plus the
   on/off pairs --[no-]batch, --[no-]index, --[no-]incremental,
   --[no-]pruning, --[no-]trace and --[no-]metrics (see [exec_term]
   below). Schema files use the format of Corpus.Schema_parser. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_schema path =
  match Corpus.Schema_parser.parse (read_file path) with
  | Ok s -> s
  | Error msg ->
      Printf.eprintf "error: %s: %s\n" path msg;
      exit 1

let load_corpus paths =
  let corpus = Corpus.Corpus_store.create () in
  List.iter (fun p -> Corpus.Corpus_store.add_schema corpus (load_schema p)) paths;
  corpus

(* ------------------------------------------------------------------ *)

let demo () =
  let prng = Util.Prng.create 2003 in
  let scenario = Core.Delearning.build prng ~courses_per_peer:3 in
  let d = scenario.Core.Delearning.delearning in
  Printf.printf "DElearning coalition: %s\n"
    (String.concat ", " (List.map fst d.Workload.University.peers));
  Printf.printf "mappings: %d (linear in peers)\n"
    (Pdms.Catalog.mapping_count d.Workload.University.catalog);
  let visible = Core.Delearning.courses_visible_at scenario "roma" in
  Printf.printf "courses visible from roma: %d\n" (List.length visible);
  List.iteri (fun i t -> if i < 5 then Printf.printf "  %s\n" t) visible;
  let report =
    Core.Delearning.join_university scenario prng ~name:"trento" ~rel:"corso"
      ~attrs:[ "titolo"; "iscritti" ] ~courses:4
  in
  Printf.printf "trento joined via %s; correspondences: %s\n"
    report.Core.Delearning.mapped_to
    (String.concat ", "
       (List.map
          (fun (a, b) -> a ^ "<->" ^ b)
          report.Core.Delearning.correspondences));
  Printf.printf "courses visible from trento: %d\n"
    (List.length (Core.Delearning.courses_visible_at scenario "trento"))

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Run the DElearning scenario end to end")
    Term.(const demo $ const ())

(* ------------------------------------------------------------------ *)

let match_schemas a b corpus_paths =
  let s1 = load_schema a and s2 = load_schema b in
  let corpus =
    if corpus_paths = [] then begin
      (* Default corpus: seeded university variants. *)
      let prng = Util.Prng.create 7 in
      Workload.University.corpus_of_variants prng ~n:8 ~level:0.3
    end
    else load_corpus corpus_paths
  in
  let matcher = Matching.Corpus_matcher.build corpus in
  let pairs = Matching.Corpus_matcher.match_schemas matcher s1 s2 in
  if pairs = [] then print_endline "no correspondences proposed"
  else
    List.iter
      (fun (c1, c2, score) ->
        Printf.printf "%-30s <-> %-30s %.3f\n"
          (c1.Matching.Column.rel ^ "." ^ c1.Matching.Column.attr)
          (c2.Matching.Column.rel ^ "." ^ c2.Matching.Column.attr)
          score)
      pairs

let schema_arg n doc = Arg.(required & pos n (some file) None & info [] ~docv:"SCHEMA" ~doc)

let corpus_arg =
  Arg.(value & opt_all file [] & info [ "c"; "corpus" ] ~docv:"SCHEMA"
         ~doc:"Corpus schema file (repeatable); default: built-in university corpus")

let match_cmd =
  Cmd.v
    (Cmd.info "match" ~doc:"Propose correspondences between two schema files")
    Term.(
      const match_schemas
      $ schema_arg 0 "first schema file"
      $ schema_arg 1 "second schema file"
      $ corpus_arg)

(* ------------------------------------------------------------------ *)

let advise partial_path corpus_paths =
  let partial = load_schema partial_path in
  let corpus =
    if corpus_paths = [] then
      Workload.University.corpus_of_variants (Util.Prng.create 7) ~n:8 ~level:0.3
    else load_corpus corpus_paths
  in
  let advisor = Advisor.Design_advisor.build corpus in
  let suggestions = Advisor.Design_advisor.rank advisor ~partial in
  if suggestions = [] then print_endline "no suggestions"
  else
    List.iter
      (fun (s : Advisor.Design_advisor.suggestion) ->
        Printf.printf "%-20s score %.3f  matched %d  proposes %d elements\n"
          s.Advisor.Design_advisor.candidate.Corpus.Schema_model.schema_name
          s.Advisor.Design_advisor.score
          (List.length s.Advisor.Design_advisor.matched)
          (List.length s.Advisor.Design_advisor.missing);
        List.iteri
          (fun i (rel, attr) ->
            if i < 8 then Printf.printf "    + %s.%s\n" rel attr)
          s.Advisor.Design_advisor.missing)
      suggestions

let advise_cmd =
  Cmd.v (Cmd.info "advise" ~doc:"Rank corpus schemas against a partial schema")
    Term.(const advise $ schema_arg 0 "partial schema file" $ corpus_arg)

(* ------------------------------------------------------------------ *)

let critique draft_path corpus_paths =
  let draft = load_schema draft_path in
  let corpus =
    if corpus_paths = [] then
      Workload.University.corpus_of_variants (Util.Prng.create 7) ~n:8 ~level:0.3
    else load_corpus corpus_paths
  in
  let stats = Corpus.Basic_stats.build ~variant:Corpus.Basic_stats.Raw corpus in
  match Advisor.Critique.decompositions ~stats ~corpus draft with
  | [] -> print_endline "no decomposition advice: the design conforms to the corpus"
  | advices ->
      List.iter
        (fun (a : Advisor.Critique.advice) ->
          Printf.printf
            "relation '%s': move {%s} into a separate relation%s (confidence %.2f)\n"
            a.Advisor.Critique.relation
            (String.concat ", " a.Advisor.Critique.move_out)
            (match a.Advisor.Critique.suggested_relation with
            | Some r -> " such as '" ^ r ^ "'"
            | None -> "")
            a.Advisor.Critique.confidence)
        advices

let critique_cmd =
  Cmd.v (Cmd.info "critique" ~doc:"Corpus-based decomposition advice for a draft schema")
    Term.(const critique $ schema_arg 0 "draft schema file" $ corpus_arg)

(* ------------------------------------------------------------------ *)

let stats_term term corpus_paths =
  let corpus =
    if corpus_paths = [] then
      Workload.University.corpus_of_variants (Util.Prng.create 7) ~n:10 ~level:0.3
    else load_corpus corpus_paths
  in
  let stats = Corpus.Basic_stats.build corpus in
  let u = Corpus.Basic_stats.term_usage stats term in
  Printf.printf "term %S (normalised: %s) over %d schemas\n" term
    (Corpus.Basic_stats.normalize stats term)
    (Corpus.Corpus_store.size corpus);
  Printf.printf "  as relation name : %.0f%%\n" (100.0 *. u.Corpus.Basic_stats.as_relation);
  Printf.printf "  as attribute     : %.0f%%\n" (100.0 *. u.Corpus.Basic_stats.as_attribute);
  Printf.printf "  in data          : %.0f%%\n" (100.0 *. u.Corpus.Basic_stats.in_data);
  (match Corpus.Basic_stats.cooccurring_attrs stats term with
  | [] -> ()
  | co ->
      Printf.printf "  co-occurs with   : %s\n"
        (String.concat ", "
           (List.filteri (fun i _ -> i < 6) (List.map fst co))));
  match Corpus.Similar_names.most_similar ~limit:5 stats term with
  | [] -> ()
  | sims ->
      Printf.printf "  similar names    : %s\n"
        (String.concat ", "
           (List.map (fun (t, s) -> Printf.sprintf "%s(%.2f)" t s) sims))

let term_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TERM" ~doc:"term to look up")

let stats_cmd =
  Cmd.v (Cmd.info "stats" ~doc:"Corpus statistics for a term")
    Term.(const stats_term $ term_arg $ corpus_arg)

(* ------------------------------------------------------------------ *)

let query_inspect text =
  match Cq.Parser.parse_query text with
  | Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 1
  | Ok q ->
      Printf.printf "parsed : %s\n" (Cq.Query.to_string q);
      Printf.printf "safe   : %b\n" (Cq.Query.is_safe q);
      Printf.printf "vars   : %s\n" (String.concat ", " (Cq.Query.vars q));
      Printf.printf "distinguished: %s\n"
        (String.concat ", " (Cq.Query.head_vars q));
      Printf.printf "existential  : %s\n"
        (String.concat ", " (Cq.Query.existential_vars q));
      let m = Cq.Minimize.minimize q in
      if Cq.Query.size m < Cq.Query.size q then
        Printf.printf "minimized    : %s\n" (Cq.Query.to_string m)
      else Printf.printf "already minimal\n"

let query_cmd =
  Cmd.v (Cmd.info "query" ~doc:"Parse and inspect a conjunctive query")
    Term.(
      const query_inspect
      $ Arg.(required & pos 0 (some string) None
             & info [] ~docv:"QUERY" ~doc:"e.g. 'q(X) :- r(X, Y)'"))

(* ------------------------------------------------------------------ *)

let load_pdms path =
  match Pdms.Pdms_file.parse (read_file path) with
  | Ok catalog -> catalog
  | Error msg ->
      Printf.eprintf "error: %s: %s\n" path msg;
      exit 1

(* Execution-context flags shared verbatim by `answer`, `search` and
   `distributed`: parsed once into a [Pdms.Exec.t] plus the two output
   switches. Every boolean switch is a [--FLAG]/[--no-FLAG] pair built
   by one helper, so each command documents both directions and scripts
   can always force a known state regardless of the default. Spans and
   metrics go to stderr so stdout stays pipeable. *)

type cli_exec = {
  exec : Pdms.Exec.t;
  sink : Obs.Sink.t option;  (* Some when --trace *)
  show_metrics : bool;
}

(* The commands don't link every delta consumer (Updategram, Cache,
   Propagate), so pre-register their counters by name — the registry is
   idempotent — and every --metrics report shows the full pdms.delta.*
   and pdms.wal.* families, at zero when unused. *)
let () =
  List.iter
    (fun n -> ignore (Obs.Metrics.counter ("pdms.delta." ^ n)))
    [ "applied"; "cache_kept"; "replicas_converged" ];
  List.iter
    (fun n -> ignore (Obs.Metrics.counter ("pdms.wal." ^ n)))
    [ "appends"; "bytes"; "fsyncs"; "replayed"; "torn_tail_drops"; "snapshots" ]

(* One on/off switch rendered as the flag pair [--name] / [--no-name];
   [default] applies when neither is given, the last one given wins. *)
let onoff name ~default ~on ~off =
  let on = if default then on ^ " This is the default." else on in
  let off = if default then off else off ^ " This is the default." in
  Arg.(
    value
    & vflag default
        [
          (true, info [ name ] ~doc:on);
          (false, info [ "no-" ^ name ] ~doc:off);
        ])

let make_cli_exec jobs pruning batch index incremental trace metrics =
  let pruning =
    if pruning then Pdms.Exec.default_pruning else Pdms.Exec.no_pruning
  in
  let sink = if trace then Some (Obs.Sink.memory ()) else None in
  let trace_t =
    match sink with Some s -> Obs.Trace.create s | None -> Obs.Trace.null
  in
  {
    exec =
      Pdms.Exec.make ~jobs ~pruning ~batch ~index ~incremental ~trace:trace_t
        ();
    sink;
    show_metrics = metrics;
  }

let exec_term =
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"JOBS"
          ~doc:
            "Run the parallel phases (subsumption sweep, union evaluation, \
             keyword scoring) with this many domains. Results are identical \
             for every value.")
  in
  let pruning =
    onoff "pruning" ~default:true
      ~on:"Enable the reformulation pruning heuristics."
      ~off:
        "Ablation mode: every reformulation pruning heuristic off, low depth \
         cap."
  in
  let batch =
    onoff "batch" ~default:true
      ~on:
        "Evaluate the rewriting union through the shared-prefix Cq.Plan trie."
      ~off:
        "Evaluate every rewriting independently instead of through the \
         shared-prefix Cq.Plan trie. A/B escape hatch: the answer set is \
         identical either way."
  in
  let index =
    onoff "index" ~default:true
      ~on:"Answer keyword searches through the Kwindex inverted index."
      ~off:
        "Answer keyword searches by brute-force scoring of every tuple. A/B \
         escape hatch: the hit list is byte-identical either way."
  in
  let incremental =
    onoff "incremental" ~default:true
      ~on:
        "Maintain derived structures (inverted index, statistics, caches, \
         replicas) by patching them from the deltas retained in each \
         relation's update log."
      ~off:
        "Rebuild derived structures from scratch whenever a base relation \
         changes. A/B escape hatch: search hits and query answers are \
         byte-identical either way."
  in
  let trace =
    onoff "trace" ~default:false
      ~on:
        "Collect hierarchical spans for the whole answer path and print the \
         span tree (timings, per-phase counts) to stderr."
      ~off:"Do not collect or print spans."
  in
  let metrics =
    onoff "metrics" ~default:false
      ~on:
        "Print the Obs.Metrics counters accumulated by the run to stderr."
      ~off:"Do not print the counter snapshot."
  in
  Term.(
    const make_cli_exec $ jobs $ pruning $ batch $ index $ incremental
    $ trace $ metrics)

let report_cli_exec cli =
  (match cli.sink with
  | Some sink ->
      List.iter (fun sp -> prerr_string (Obs.Span.render sp)) (Obs.Sink.spans sink)
  | None -> ());
  if cli.show_metrics then
    prerr_string (Obs.Metrics.render (Obs.Metrics.snapshot ()))

let parse_query_arg query_text =
  match Cq.Parser.parse_query query_text with
  | Error msg ->
      Printf.eprintf "query parse error: %s\n" msg;
      exit 1
  | Ok query -> query

(* Catalog source shared by answer/search/distributed: either the
   positional PDMS_FILE, or --data-dir DIR — a durable data directory,
   recovered (snapshot + WAL replay) before serving.  Returns the
   catalog and the positional arguments left after consuming the
   optional file. *)

let data_dir_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "data-dir" ] ~docv:"DIR"
        ~doc:
          "Recover the catalog from a durable data directory (newest \
           snapshot + write-ahead-log replay; see `revere init') instead \
           of reading a $(i,PDMS_FILE) argument.")

let recover_catalog ~exec dir =
  match Pdms.Persist.open_dir ~exec dir with
  | Ok t ->
      let catalog = Pdms.Persist.catalog t in
      (* The read-only commands never append; opening (which also
         repairs any torn WAL tail) and closing is the whole story. *)
      Pdms.Persist.close t;
      catalog
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

let source_catalog ~exec data_dir args =
  match (data_dir, args) with
  | None, file :: rest -> (load_pdms file, rest)
  | Some dir, rest -> (recover_catalog ~exec dir, rest)
  | None, [] ->
      Printf.eprintf "error: give a PDMS_FILE argument or --data-dir DIR\n";
      exit 2

let pos_args docv =
  Arg.(value & pos_all string [] & info [] ~docv)

let one_query what = function
  | [ query_text ] -> parse_query_arg query_text
  | _ ->
      Printf.eprintf
        "error: %s expects [PDMS_FILE] QUERY (the file exactly when \
         --data-dir is not given)\n"
        what;
      exit 2

let answer_pdms data_dir args cli =
  let catalog, rest = source_catalog ~exec:cli.exec data_dir args in
  let query = one_query "answer" rest in
  let result = Pdms.Answer.answer ~exec:cli.exec catalog query in
  let rows = Pdms.Answer.answers_list result in
  List.iter (fun row -> print_endline (String.concat " | " row)) rows;
  Format.eprintf "%d answers; %a@." (List.length rows)
    Pdms.Reformulate.pp_stats
    result.Pdms.Answer.outcome.Pdms.Reformulate.stats;
  report_cli_exec cli

let answer_cmd =
  Cmd.v
    (Cmd.info "answer"
       ~doc:
         "Answer a conjunctive query over a PDMS described in a file or a \
          durable --data-dir")
    Term.(const answer_pdms $ data_dir_arg $ pos_args "PDMS_FILE|QUERY"
          $ exec_term)

let search_pdms data_dir args cli =
  let catalog, keywords = source_catalog ~exec:cli.exec data_dir args in
  if keywords = [] then begin
    Printf.eprintf "error: search expects at least one KEYWORD\n";
    exit 2
  end;
  (match
     Pdms.Keyword.search ~exec:cli.exec catalog (String.concat " " keywords)
   with
  | [] -> print_endline "no hits"
  | hits -> List.iter (fun h -> print_endline (Pdms.Keyword.render_hit h)) hits);
  report_cli_exec cli

let search_cmd =
  Cmd.v
    (Cmd.info "search"
       ~doc:
         "Keyword search across every peer's stored data in a PDMS file or \
          a durable --data-dir")
    Term.(
      const search_pdms $ data_dir_arg $ pos_args "PDMS_FILE|KEYWORD"
      $ exec_term)

let distributed_pdms data_dir args at latency fail_peers flaky retries cli =
  let catalog, rest = source_catalog ~exec:cli.exec data_dir args in
  let query = one_query "distributed" rest in
  let network =
    Pdms.Distributed.network_of_catalog catalog ~latency_ms:latency
  in
  List.iter (Pdms.Network.Fault.fail_peer network) fail_peers;
  if flaky > 0.0 then Pdms.Network.Fault.flaky network ~p:flaky ();
  let exec =
    {
      cli.exec with
      Pdms.Exec.retry =
        { cli.exec.Pdms.Exec.retry with Pdms.Exec.max_attempts = retries };
    }
  in
  let plan = Pdms.Distributed.execute ~exec catalog network ~at query in
  List.iter
    (fun (p : Pdms.Distributed.site_plan) ->
      Printf.printf "%-12s reads(local=%d remote=%d) fetch=%.2fms ship=%.2fms  %s\n"
        p.Pdms.Distributed.site p.Pdms.Distributed.local_reads
        p.Pdms.Distributed.remote_reads p.Pdms.Distributed.fetch_ms
        p.Pdms.Distributed.ship_ms
        (Cq.Query.to_string p.Pdms.Distributed.rewriting))
    plan.Pdms.Distributed.sites;
  Relalg.Relation.tuples plan.Pdms.Distributed.answers
  |> List.map (fun row ->
         Array.to_list (Array.map Relalg.Value.to_string row))
  |> List.sort (List.compare String.compare)
  |> List.iter (fun row -> print_endline (String.concat " | " row));
  Printf.printf
    "%d answers; distributed=%.2fms central-baseline=%.2fms\n"
    (Relalg.Relation.cardinality plan.Pdms.Distributed.answers)
    plan.Pdms.Distributed.distributed_ms plan.Pdms.Distributed.central_ms;
  print_endline
    (Pdms.Distributed.report_to_string plan.Pdms.Distributed.report);
  report_cli_exec cli

let distributed_cmd =
  Cmd.v
    (Cmd.info "distributed"
       ~doc:
         "Answer a query with peer-based distributed execution: pick the \
          cheapest site per rewriting over a uniform-latency network built \
          from the mapping graph, and compare against the ship-everything \
          central baseline. Faults can be injected to watch the answer \
          degrade: the tool still exits 0 and reports how much of the \
          answer survived.")
    Term.(
      const distributed_pdms
      $ data_dir_arg
      $ pos_args "PDMS_FILE|QUERY"
      $ Arg.(required & opt (some string) None
             & info [ "at" ] ~docv:"PEER" ~doc:"The querying peer")
      $ Arg.(value & opt float 10.0
             & info [ "latency" ] ~docv:"MS"
                 ~doc:"Per-KB link latency for every mapping-graph edge")
      $ Arg.(value & opt_all string []
             & info [ "fail-peer" ] ~docv:"PEER"
                 ~doc:"Take a peer down before executing (repeatable)")
      $ Arg.(value & opt float 0.0
             & info [ "flaky" ] ~docv:"P"
                 ~doc:"Probability in [0,1] that any individual send is \
                       dropped (seeded PRNG, reproducible)")
      $ Arg.(value & opt int 3
             & info [ "retries" ] ~docv:"N"
                 ~doc:"Send attempts per transfer, including the first")
      $ exec_term)

let gen_pdms seed courses =
  let prng = Util.Prng.create seed in
  let d = Workload.University.build_delearning prng ~courses_per_peer:courses in
  print_string (Pdms.Pdms_file.render d.Workload.University.catalog)

let gen_pdms_cmd =
  Cmd.v
    (Cmd.info "gen-pdms"
       ~doc:
         "Emit the six-university Figure-2 PDMS (Stanford, Berkeley, MIT, \
          Roma, Oxford, Tsinghua) as a Pdms_file, ready for `revere \
          answer`/`search`/`distributed`")
    Term.(
      const gen_pdms
      $ Arg.(value & opt int 2003 & info [ "seed" ] ~doc:"PRNG seed")
      $ Arg.(value & opt int 3
             & info [ "courses" ] ~doc:"courses per university"))

(* ------------------------------------------------------------------ *)

let fig4 input_path =
  let xml =
    match Xmlmodel.Xml_parser.parse (read_file input_path) with
    | Ok x -> x
    | Error msg ->
        Printf.eprintf "error: %s: %s\n" input_path msg;
        exit 1
  in
  (match Xmlmodel.Dtd.validate Workload.University.berkeley_dtd xml with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "error: not a Berkeley schedule: %s\n" msg;
      exit 1);
  let out =
    Xmlmodel.Template.apply_single Workload.University.berkeley_to_mit
      ~docs:[ ("Berkeley.xml", xml) ]
  in
  print_string (Xmlmodel.Xml.to_string out)

let fig4_cmd =
  Cmd.v
    (Cmd.info "fig4"
       ~doc:"Apply the paper's Figure-4 Berkeley-to-MIT mapping to an XML file")
    Term.(
      const fig4
      $ Arg.(required & pos 0 (some file) None
             & info [] ~docv:"BERKELEY_XML" ~doc:"a schedule document"))

let gen_berkeley seed colleges depts courses =
  let prng = Util.Prng.create seed in
  let xml =
    Workload.University.berkeley_instance prng ~colleges ~depts ~courses
  in
  print_string (Xmlmodel.Xml.to_string xml)

let gen_berkeley_cmd =
  let int_opt name v doc = Arg.(value & opt int v & info [ name ] ~doc) in
  Cmd.v
    (Cmd.info "gen-berkeley" ~doc:"Emit a random Figure-3 Berkeley schedule")
    Term.(
      const gen_berkeley
      $ int_opt "seed" 1 "PRNG seed"
      $ int_opt "colleges" 2 "number of colleges"
      $ int_opt "depts" 2 "departments per college"
      $ int_opt "courses" 3 "courses per department")

(* ------------------------------------------------------------------ *)
(* Durable data directories: init / update / snapshot / fsck.  See
   Pdms.Persist — a directory holds snapshot checkpoints plus a
   write-ahead log of effective deltas; recovery is newest valid
   snapshot + WAL suffix replay. *)

let required_data_dir ~must_exist =
  Arg.(
    required
    & opt (some (if must_exist then dir else string)) None
    & info [ "data-dir" ] ~docv:"DIR" ~doc:"The durable data directory.")

let init_data_dir dir path =
  let catalog = load_pdms path in
  Pdms.Persist.init ~dir catalog;
  Printf.printf "initialised %s from %s (snapshot seq 0, empty wal)\n" dir path

let init_cmd =
  Cmd.v
    (Cmd.info "init"
       ~doc:
         "Create a durable data directory from a PDMS file: a full \
          snapshot covering sequence 0 and an empty write-ahead log. \
          Existing durability state in the directory is replaced.")
    Term.(
      const init_data_dir
      $ required_data_dir ~must_exist:false
      $ Arg.(required & pos 0 (some file) None
             & info [] ~docv:"PDMS_FILE" ~doc:"Pdms_file format"))

let parse_row_arg s =
  Pdms.Pdms_file.split_row s |> List.map String.trim
  |> List.map Pdms.Pdms_file.parse_value
  |> Array.of_list

let update_data_dir dir rel inserts deletes do_snapshot cli =
  let t = Pdms.Persist.open_dir_exn ~exec:cli.exec dir in
  let u =
    Pdms.Updategram.make ~rel
      ~inserts:(List.map parse_row_arg inserts)
      ~deletes:(List.map parse_row_arg deletes)
      ()
  in
  (try Pdms.Persist.apply ~exec:cli.exec ~sync:true t u with
  | Not_found ->
      Printf.eprintf "error: no stored relation %s\n" rel;
      exit 1
  | Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1);
  Printf.printf "applied %d insert(s), %d delete(s) to %s; wal seq %d\n"
    (List.length inserts) (List.length deletes) rel (Pdms.Persist.wal_seq t);
  if do_snapshot then
    Printf.printf "snapshot %s\n" (Pdms.Persist.snapshot t);
  Pdms.Persist.close t;
  report_cli_exec cli

let row_opt name doc =
  Arg.(value & opt_all string [] & info [ name ] ~docv:"ROW" ~doc)

let update_cmd =
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Apply an updategram to a durable data directory: the effective \
          delta is appended to the write-ahead log (fsynced) before the \
          store mutates, so a crash at any point recovers consistently. \
          Row values use the Pdms_file syntax: 'v | v | ...', single \
          quotes forcing string interpretation.")
    Term.(
      const update_data_dir
      $ required_data_dir ~must_exist:true
      $ Arg.(required & pos 0 (some string) None
             & info [] ~docv:"REL"
                 ~doc:"The stored relation, e.g. 'uw.course!'")
      $ row_opt "insert" "Tuple to insert (repeatable)."
      $ row_opt "delete" "Tuple to delete (repeatable)."
      $ Arg.(value & flag
             & info [ "snapshot" ]
                 ~doc:"Checkpoint the catalog after applying.")
      $ exec_term)

let snapshot_data_dir dir cli =
  let t = Pdms.Persist.open_dir_exn ~exec:cli.exec dir in
  Printf.printf "snapshot %s (covers wal seq %d)\n" (Pdms.Persist.snapshot t)
    (Pdms.Persist.wal_seq t);
  Pdms.Persist.close t;
  report_cli_exec cli

let snapshot_cmd =
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Checkpoint a durable data directory: write a fresh snapshot \
          stamped with the current write-ahead-log sequence, so future \
          recoveries replay only the records after it.")
    Term.(const snapshot_data_dir $ required_data_dir ~must_exist:true
          $ exec_term)

let fsck_data_dir dir =
  let report = Pdms.Persist.fsck dir in
  print_string (Pdms.Persist.render_fsck report);
  exit (if Pdms.Persist.fsck_ok report then 0 else 1)

let fsck_cmd =
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Verify a durable data directory read-only: snapshot checksums, \
          write-ahead-log framing (a torn tail is reported but is not an \
          error — recovery discards it), and a replay dry run. Exits 0 \
          exactly when recovery would succeed.")
    Term.(const fsck_data_dir $ required_data_dir ~must_exist:true)

(* ------------------------------------------------------------------ *)

let stem words =
  List.iter (fun w -> Printf.printf "%s -> %s\n" w (Util.Stemmer.stem w)) words

let stem_cmd =
  Cmd.v (Cmd.info "stem" ~doc:"Porter-stem words")
    Term.(const stem $ Arg.(value & pos_all string [] & info [] ~docv:"WORD"))

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "revere" ~version:"1.0.0"
      ~doc:"REVERE: crossing the structure chasm (CIDR 2003), in OCaml"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ demo_cmd; match_cmd; advise_cmd; critique_cmd; stats_cmd;
            query_cmd; stem_cmd; fig4_cmd; gen_berkeley_cmd; gen_pdms_cmd;
            answer_cmd; search_cmd; distributed_cmd; init_cmd; update_cmd;
            snapshot_cmd; fsck_cmd ]))
